/**
 * @file
 * MemorySystem: the simulated multiprocessor memory hierarchy.
 *
 * Models the machine of the paper's Section 3.2: per-CPU virtually
 * indexed split L1 caches, per-CPU physically indexed external (L2)
 * caches kept coherent with a bus-based MESI invalidation protocol, a
 * bandwidth-limited split-transaction bus, per-CPU TLBs, and an
 * R10000-style prefetch unit (up to four outstanding prefetches, a
 * fifth stalls, prefetches to unmapped TLB entries are dropped,
 * prefetched lines fill the external cache only).
 *
 * Every demand miss in an external cache is classified (see
 * mem/miss_classify.h) so the harness can regenerate the paper's
 * MCPI breakdowns. Page colors enter the picture through the
 * VirtualMemory translation consulted on every access: the physical
 * page chosen at fault time determines which external-cache sets a
 * page occupies — the entire mechanism CDPC manipulates.
 */

#ifndef CDPC_MEM_MEMSYSTEM_H
#define CDPC_MEM_MEMSYSTEM_H

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/flat_hash.h"
#include "common/types.h"
#include "machine/config.h"
#include "mem/bus.h"
#include "mem/cache.h"
#include "mem/miss_classify.h"
#include "mem/profile_hook.h"
#include "mem/tlb.h"
#include "vm/virtual_memory.h"

namespace cdpc
{

/** Upper bound on CPUs (paper evaluates up to 16). */
inline constexpr std::uint32_t kMaxCpus = 32;

// The sharing classifier keeps per-line CPU sets in 32-bit masks, and
// physical addresses/line numbers must be 64-bit so >4 GiB footprints
// never truncate in shift-based line/page math.
static_assert(kMaxCpus <= 32, "sharing/holder masks are 32-bit");
static_assert(sizeof(Addr) == 8 && sizeof(PAddr) == 8 &&
                  sizeof(VAddr) == 8 && sizeof(PageNum) == 8,
              "address and page-number types must be 64-bit");

/** What kind of reference a CPU is making. */
enum class AccessKind : unsigned char
{
    Load,
    Store,
    Ifetch,
};

/** One demand reference presented to the memory system. */
struct MemAccess
{
    VAddr va = 0;
    AccessKind kind = AccessKind::Load;
    /**
     * Bitmask of the words (8B units) this reference touches within
     * its external-cache line. Line-coalesced reference generation
     * makes one MemAccess stand for a whole unit-stride run through
     * the line, so the mask may have several bits set. Used for the
     * Dubois true/false-sharing classification.
     */
    std::uint32_t wordMask = 1;
    /** CPUs concurrently faulting (bin-hopping race model). */
    std::uint32_t concurrentFaults = 1;
};

/** Stall categories charged to a CPU for one access. */
struct AccessOutcome
{
    /** Total cycles the CPU stalls for this reference. */
    Cycles stall = 0;
    /** Portion of the stall spent in the kernel (TLB/page fault). */
    Cycles kernel = 0;
    bool l1Hit = false;
    bool l2Hit = false;
    bool tlbMiss = false;
    bool pageFault = false;
    /** Valid only when the reference missed in the external cache. */
    MissKind missKind = MissKind::Cold;
    bool l2Miss = false;
};

/** Per-CPU memory-system statistics. */
struct CpuMemStats
{
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t ifetches = 0;
    std::uint64_t l1Hits = 0;
    std::uint64_t l1Misses = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t tlbMisses = 0;
    std::uint64_t pageFaults = 0;

    /** Counts and stalls per MissKind (indexed by enum value). */
    std::array<std::uint64_t, 6> missCount{};
    std::array<Cycles, 6> missStall{};

    /** Stall for L1 misses that hit the external cache ("on-chip"). */
    Cycles l2HitStall = 0;
    /** Kernel stall (TLB refills + page faults). */
    Cycles kernelStall = 0;
    /** Stall waiting for a late prefetch to complete. */
    Cycles prefetchLateStall = 0;
    /** Stall because a fifth prefetch found the queue full. */
    Cycles prefetchFullStall = 0;

    std::uint64_t prefetchesIssued = 0;
    std::uint64_t prefetchesDropped = 0; ///< TLB-miss drops
    std::uint64_t prefetchesUseful = 0;  ///< later hit by a demand ref

    /** Total memory stall excluding kernel time. */
    Cycles
    memStall() const
    {
        Cycles s = l2HitStall + prefetchLateStall + prefetchFullStall;
        for (Cycles c : missStall)
            s += c;
        return s;
    }

    std::uint64_t
    totalRefs() const
    {
        return loads + stores + ifetches;
    }
};

/**
 * Observation interface for lockstep verification: a registered
 * observer sees every completed demand reference, prefetch and page
 * purge with enough context to drive an independent model of the
 * hierarchy (src/verify/). Hooks fire after the optimized path has
 * fully updated its state for the event, and before any dynamic-
 * policy (conflict observer) cycles are charged on top — so the
 * reported outcome is the pure memory-system outcome.
 */
class MemObserver
{
  public:
    virtual ~MemObserver() = default;

    /** One demand reference completed with @p out; @p pa is the
     *  translated physical address (post-fault). */
    virtual void onAccess(CpuId cpu, const MemAccess &acc, Cycles now,
                          const AccessOutcome &out, PAddr pa) = 0;

    /** One software prefetch was issued at @p now, stalling the CPU
     *  for @p stall cycles (0 covers the dropped cases too). */
    virtual void onPrefetch(CpuId cpu, VAddr va, Cycles now,
                            Cycles stall) = 0;

    /** purgePage(@p va) resolved to @p pa and is about to purge. */
    virtual void onPurge(VAddr va, PAddr pa) = 0;
};

/** The complete multiprocessor memory hierarchy. */
class MemorySystem
{
  public:
    /**
     * @param config machine parameters
     * @param vm the application's address space (not owned)
     */
    MemorySystem(const MachineConfig &config, VirtualMemory &vm);

    /**
     * Perform one demand reference for @p cpu at local time @p now.
     * All timing (TLB refill, page fault, cache lookups, bus
     * queueing, remote fetches) is folded into the returned stall.
     */
    AccessOutcome access(CpuId cpu, const MemAccess &acc, Cycles now);

    /**
     * Pure proof (zero mutation, safe to call concurrently from
     * per-CPU epoch workers) that access(cpu, acc, now) would take a
     * hit-only path touching nothing outside @p cpu's port: a valid
     * translation micro-cache entry over a resident TLB slot, and
     * either an L1 hit with sufficient permission or an external-
     * cache hit that needs no ownership upgrade. A proven access
     * never faults, never arbitrates for the bus, never inserts or
     * evicts an external-cache line, and never changes another CPU's
     * MESI state.
     *
     * The *page-privacy* half of the locality argument (no other CPU
     * touches this line's page inside the current nest, so remote
     * activity cannot invalidate this proof before the commit) is
     * the caller's obligation — the simulator proves it from the
     * nest's per-CPU footprint intervals (DESIGN.md §14).
     */
    bool isLocalAccess(CpuId cpu, const MemAccess &acc) const;

    /**
     * Execute one demand reference for which isLocalAccess() held,
     * replicating exactly the state and stat transitions the serial
     * access() would make (TLB LRU/stat commit, L1/L2 LRU, silent
     * E->M, dirty-victim write-down, sharing-word accounting), minus
     * the observer/audit hooks — the epoch engine only runs when
     * parallelSafe() says those are absent. Memoized-translation
     * counts are staged per port; commitMemoNotes() folds them into
     * the shared VM stats at the next barrier.
     */
    AccessOutcome accessLocal(CpuId cpu, const MemAccess &acc,
                              Cycles now);

    /** How prefetch(cpu, va, now) would behave, proven purely. */
    enum class PrefetchLocality : unsigned char
    {
        /** Would transfer on the bus (or the proof failed): defer. */
        No,
        /** Dropped on a TLB miss or unmapped page: local, and —
         *  because a CPU's own TLB is program-ordered — local even
         *  without page privacy. */
        Drop,
        /** Line already resident or in flight: local zero-cost issue,
         *  valid only with target-page privacy (a remote fill could
         *  otherwise race the residency probe). */
        Present,
    };

    /** Pure classification of one software prefetch; see above. */
    PrefetchLocality classifyLocalPrefetch(CpuId cpu, VAddr va) const;

    /**
     * Commit a prefetch classified Drop or Present: the exact stat
     * deltas of the serial prefetch(), which for these two cases
     * never stall and touch only @p cpu's counters.
     */
    void prefetchLocal(CpuId cpu, PrefetchLocality kind);

    /**
     * True when no registered hook requires the global reference
     * order (lockstep observer, dynamic-recolor conflict observer,
     * conflict-attribution profiler, cadence auditor) and no
     * fallback policy can steal mapped pages out from under a
     * privacy proof — the memory-system half of the epoch engine's
     * eligibility check.
     */
    bool parallelSafe() const
    {
        return !observer_ && !hasConflictObserver && !profiler_ &&
               auditEvery_ == 0 && !vm.fallbackMaySteal();
    }

    /**
     * Fold the per-port staged memoized-translation counts into the
     * shared VmStats. Called at epoch barriers (single-threaded);
     * the end-of-run value is identical to serial because the serial
     * path bumps the same counter once per memo hit.
     */
    void commitMemoNotes();

    /**
     * Issue a (non-binding) software prefetch of the line holding
     * @p va. Returns the cycles the CPU stalls, which is zero unless
     * the prefetch queue is full. Prefetches never take page faults:
     * if the page is not in the TLB the prefetch is dropped, and if
     * the page is unmapped it is also dropped (the paper's R10000
     * semantics).
     */
    Cycles prefetch(CpuId cpu, VAddr va, Cycles now);

    /** Per-CPU statistics. */
    const CpuMemStats &cpuStats(CpuId cpu) const;

    /** Aggregate statistics over all CPUs. */
    CpuMemStats totalStats() const;

    const BusStats &busStats() const { return bus.stats(); }
    double busUtilization(Cycles window) const
    {
        return bus.utilization(window);
    }

    const Cache &l2Cache(CpuId cpu) const { return ports[cpu]->l2; }
    const Cache &l1dCache(CpuId cpu) const { return ports[cpu]->l1d; }
    const Cache &l1iCache(CpuId cpu) const { return ports[cpu]->l1i; }
    const Tlb &tlb(CpuId cpu) const { return ports[cpu]->tlb; }
    /** The conflict/capacity LRU shadow fed by this CPU's demand
     *  stream (deep structural comparison in verify mode). */
    const LruShadow &missShadow(CpuId cpu) const
    {
        return ports[cpu]->shadow;
    }
    /** First cycle at which the bus will next be free. */
    Cycles busFreeAt() const { return bus.freeAt(); }
    /** Shortest bus transaction — the epoch-window derivation input. */
    Cycles busMinTransactionCycles() const
    {
        return bus.minTransactionCycles();
    }
    /** The address space this hierarchy translates through. */
    const VirtualMemory &addressSpace() const { return vm; }
    std::uint32_t lineBytes() const { return cfg.l2.lineBytes; }
    std::uint32_t numCpus() const { return cfg.numCpus; }

    /**
     * Hook for dynamic policies: invoked on every demand miss that
     * classified as a conflict, with (cpu, faulting vpn, time); the
     * returned cycles are charged to the access as kernel time.
     */
    using ConflictObserver =
        std::function<Cycles(CpuId, PageNum, Cycles)>;

    /** Install (or clear, with nullptr) the conflict observer. */
    void setConflictObserver(ConflictObserver obs);

    /**
     * Install (or clear, with nullptr) the lockstep verification
     * observer. Not owned; must outlive the registration. Costs one
     * pointer null-check per reference when absent.
     */
    void setMemObserver(MemObserver *obs) { observer_ = obs; }

    /**
     * Install (or clear, with nullptr) the conflict-attribution
     * profiler. Not owned; must outlive the registration. Costs one
     * pointer null-check per external-cache leg when absent. While
     * installed, parallelSafe() turns false: last-evictor tracking
     * needs the global reference order, so the epoch engine degrades
     * profiled nests to serial exactly like the other observers.
     */
    void setConflictProfiler(ConflictProfilerHook *p) { profiler_ = p; }

    /**
     * Valid external-cache lines per page color, summed over every
     * CPU — the profiler's set-occupancy/pressure sample (interval
     * snapshots and the end-of-run report). size() == numColors.
     */
    std::vector<std::uint64_t> colorOccupancy() const;

    /**
     * Run auditFull() every @p every demand references (0 disables) —
     * the cadence-driven runtime promotion of the test-only auditors.
     */
    void setAuditEvery(std::uint64_t every);

    /** How many cadence audits have run so far. */
    std::uint64_t auditsRun() const { return auditsRun_; }

    /**
     * Full structural audit: auditInvariants() plus the intrusive-LRU
     * consistency of every TLB and miss shadow, the page table's
     * segment ordering, and the validity of every current-generation
     * translation micro-cache entry against the page table. panic()s
     * on the first violation.
     */
    void auditFull() const;

    /**
     * Purge one virtual page everywhere: invalidate its lines from
     * every external and on-chip cache (counting writebacks for
     * dirty lines), drop in-flight prefetches to it, and shoot the
     * page down from every TLB — the machinery a recoloring remap
     * needs before the mapping changes.
     */
    void purgePage(VAddr va);

    /**
     * Per-color presence of @p cpu's external cache: mask[c] != 0
     * iff at least one valid line of a page with color c is
     * resident. The multi-tenant scenario layer uses this to ask
     * "which cache bins would a context switch onto this CPU's
     * physical slot collide with". mask.size() == numColors.
     */
    std::vector<std::uint8_t> colorFootprint(CpuId cpu) const;

    /**
     * Model a context switch stealing @p cpu's external-cache real
     * estate: invalidate every valid L2 line whose page color is set
     * in @p mask (Modified lines are written back on the bus), back-
     * invalidate the L1s for inclusion, and drop in-flight
     * prefetches to the evicted lines. Replacement, not coherence:
     * the sharing history and miss shadow are left alone, so the
     * refetch of an evicted line classifies as a conflict/capacity
     * miss, never as cold. @return lines evicted.
     */
    std::uint64_t evictColors(CpuId cpu,
                              const std::vector<std::uint8_t> &mask);

    /**
     * Drop every entry of @p cpu's TLB (context-switch shootdown).
     * Memoized translations self-invalidate: a micro-cache entry is
     * only usable while its TLB slot still holds the vpn.
     */
    void flushTlb(CpuId cpu);

    /**
     * Audit the coherence invariants across the whole hierarchy:
     *  - single-writer: a line Modified (or dirty in an L1) in one
     *    cache is not valid anywhere else;
     *  - Exclusive means exactly one holder;
     *  - inclusion: every L1-resident line is L2-resident on the
     *    same CPU, and the residence index is consistent.
     * panic()s on the first violation. Cheap enough for tests and
     * debug runs (walks every valid line once).
     */
    void auditInvariants() const;

    /** Clear all caches, TLBs and statistics (not the page table). */
    void reset();

  private:
    struct SharingInfo
    {
        /** CPUs whose copy was invalidated and not yet refetched. */
        std::uint32_t invalidatedMask = 0;
        /** Per CPU: words written by owners since that invalidation. */
        std::array<std::uint32_t, kMaxCpus> writtenSince{};
    };

    /**
     * One entry of the per-CPU translation micro-cache: a memoized
     * vpn -> (physical page base, TLB slot) pair. The entry is
     * usable when (a) vpn matches, (b) gen matches the VM's mapping
     * generation (no remap/steal/unmap since memoization), and
     * (c) the TLB slot still holds vpn (so TLB hit/LRU/stat
     * behaviour is identical to the slow path). The common case
     * then performs zero hash lookups.
     */
    struct TransEntry
    {
        PageNum vpn = ~PageNum{0};
        PAddr paBase = 0;
        std::uint64_t gen = 0;
        std::uint32_t tlbSlot = 0;
    };

    /** Translation micro-cache entries per CPU (power of two). */
    static constexpr std::uint32_t kTransCacheEntries = 2048;

    struct Port
    {
        Port(const MachineConfig &c)
            : l1d(c.l1d), l1i(c.l1i), l2(c.l2, c.pageBytes),
              tlb(c.tlbEntries),
              shadow(c.l2.numLines()),
              l1Residence(c.l1d.numLines() + c.l1i.numLines()),
              prefetches(1024), tcache(kTransCacheEntries)
        {}

        Cache l1d;
        Cache l1i;
        Cache l2;
        Tlb tlb;
        LruShadow shadow;
        ColdTracker cold;
        /** phys line -> virtual index addr of its L1 residence. */
        FlatHashMap<Addr> l1Residence;
        /** phys line -> completion time of an issued prefetch. */
        FlatHashMap<Cycles> prefetches;
        /** Direct-mapped translation micro-cache, indexed by vpn. */
        std::vector<TransEntry> tcache;
        /** Memo-hit translations staged during a parallel phase. */
        std::uint64_t pendingMemoNotes = 0;
        CpuMemStats stats;
    };

    /** Result of the external-cache leg of an access. */
    struct L2Result
    {
        Cycles latency = 0;
        bool hit = false;
        bool miss = false;
        /** Whether the resulting L2 state grants write permission. */
        bool writable = false;
        MissKind kind = MissKind::Cold;
    };

    MachineConfig cfg;
    /** The external cache's page→color mapping (kind-aware). */
    IndexFunction idx;
    VirtualMemory &vm;
    Bus bus;
    ConflictObserver conflictObserver;
    /** Cached conflictObserver null-check, off the miss path. */
    bool hasConflictObserver = false;
    /** Lockstep verification observer; null when verification is off. */
    MemObserver *observer_ = nullptr;
    /** Conflict-attribution profiler; null when profiling is off. */
    ConflictProfilerHook *profiler_ = nullptr;
    /** Cadence of the runtime auditor; 0 disables. */
    std::uint64_t auditEvery_ = 0;
    /** References until the next cadence audit fires. */
    std::uint64_t untilAudit_ = 0;
    std::uint64_t auditsRun_ = 0;
    std::vector<std::unique_ptr<Port>> ports;
    /** Per-line invalidation history for sharing classification. */
    std::unordered_map<Addr, SharingInfo> sharing;
    /**
     * MESI directory: line -> bitmask of CPUs whose external cache
     * holds a valid copy. Snoops and invalidations walk the holder
     * bits instead of probing every CPU's cache, so their cost
     * scales with actual sharers, not with numCpus. Mutated only on
     * L2 insert/invalidate/evict — never on the hit-only local fast
     * path, which is what makes it safe to leave unlocked during a
     * parallel epoch phase.
     */
    FlatHashMap<std::uint32_t> holders_;

    /** log2(l2 line bytes); line sizes are validated powers of two. */
    unsigned lineShift = 0;
    /** pageBytes - 1; page sizes are validated powers of two. */
    Addr pageMask = 0;

    Addr lineOf(PAddr pa) const { return pa >> lineShift; }

    /** Directory maintenance at L2 insert/invalidate sites. */
    void
    addHolder(Addr line, CpuId cpu)
    {
        if (std::uint32_t *m = holders_.find(line))
            *m |= 1u << cpu;
        else
            holders_.insertOrAssign(line, 1u << cpu);
    }
    void
    dropHolder(Addr line, CpuId cpu)
    {
        if (std::uint32_t *m = holders_.find(line)) {
            *m &= ~(1u << cpu);
            if (*m == 0)
                holders_.erase(line);
        }
    }
    std::uint32_t
    holderMask(Addr line) const
    {
        const std::uint32_t *m = holders_.find(line);
        return m ? *m : 0;
    }

    /** External-cache access including coherence and the bus. */
    L2Result l2Access(CpuId cpu, Addr line, bool is_write,
                      std::uint32_t word_mask, Cycles now,
                      bool is_prefetch);

    /** prefetch() minus the observation hook. */
    Cycles prefetchImpl(CpuId cpu, VAddr va, Cycles now);

    /** Invalidate all other copies of @p line on behalf of a writer. */
    void invalidateOthers(CpuId writer, Addr line,
                          std::uint32_t word_mask, Cycles now);

    /** Record words written while other CPUs hold invalidations. */
    void recordWrite(CpuId writer, Addr line, std::uint32_t word_mask);

    /** Handle an L2 victim: writeback and L1 back-invalidation. */
    void evictL2Victim(CpuId cpu, const CacheLine &victim, Cycles now);

    /** Remove a line from a CPU's L1s (inclusion maintenance). */
    void backInvalidateL1(CpuId cpu, Addr line);

    /** Classify an external-cache demand miss. */
    MissKind classifyMiss(CpuId cpu, Addr line, std::uint32_t word_mask,
                          bool seen_before, bool shadow_hit);

    /** Count down to the next cadence audit; one branch when off. */
    void
    maybeAudit()
    {
        if (auditEvery_ && --untilAudit_ == 0) {
            untilAudit_ = auditEvery_;
            auditsRun_++;
            auditFull();
        }
    }
};

} // namespace cdpc

#endif // CDPC_MEM_MEMSYSTEM_H
