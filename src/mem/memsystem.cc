#include "mem/memsystem.h"

#include <algorithm>
#include <bit>

#include "common/intmath.h"
#include "common/logging.h"

namespace cdpc
{

MemorySystem::MemorySystem(const MachineConfig &config, VirtualMemory &vm)
    : cfg(config), idx(config.l2, config.pageBytes), vm(vm),
      bus(config.busDataCycles, config.busWritebackCycles,
          config.busUpgradeCycles)
{
    cfg.validate();
    fatalIf(cfg.numCpus > kMaxCpus, "at most ", kMaxCpus,
            " CPUs supported, got ", cfg.numCpus);
    lineShift = floorLog2(cfg.l2.lineBytes);
    pageMask = cfg.pageBytes - 1;
    ports.reserve(cfg.numCpus);
    for (std::uint32_t i = 0; i < cfg.numCpus; i++)
        ports.push_back(std::make_unique<Port>(cfg));
    sharing.reserve(cfg.l2.numLines() * cfg.numCpus);
    holders_.reserve(cfg.l2.numLines() * cfg.numCpus);
}

AccessOutcome
MemorySystem::access(CpuId cpu, const MemAccess &acc, Cycles now)
{
    panicIfNot(cpu < ports.size(), "access from out-of-range CPU ", cpu);
    Port &p = *ports[cpu];
    AccessOutcome out;

    switch (acc.kind) {
      case AccessKind::Load:
        p.stats.loads++;
        break;
      case AccessKind::Store:
        p.stats.stores++;
        break;
      case AccessKind::Ifetch:
        p.stats.ifetches++;
        break;
    }

    // --- TLB and translation ------------------------------------------
    // Fast path: the per-CPU micro-cache memoizes vpn -> (page base,
    // TLB slot). A usable entry means a guaranteed TLB hit on a
    // mapped, unmoved page, so the whole leg collapses to one array
    // probe, one TLB-slot revalidation and the same stat updates the
    // slow path would make — zero hash lookups, no fault possible.
    PageNum vpn = vm.vpnOf(acc.va);
    PAddr pa;
    TransEntry &te = p.tcache[vpn & (kTransCacheEntries - 1)];
    if (te.vpn == vpn && te.gen == vm.generation() &&
        p.tlb.hitAt(te.tlbSlot, vpn)) {
        vm.noteMemoizedTranslation();
        pa = te.paBase | (acc.va & pageMask);
    } else {
        std::uint32_t tlb_slot = 0;
        if (!p.tlb.access(vpn, &tlb_slot)) {
            out.tlbMiss = true;
            p.stats.tlbMisses++;
            out.kernel += cfg.tlbMissCycles;
        }
        Translation tr = vm.translate(acc.va, cpu, acc.concurrentFaults);
        if (tr.faulted) {
            out.pageFault = true;
            p.stats.pageFaults++;
            out.kernel += cfg.pageFaultCycles;
        }
        pa = tr.pa;
        // Memoize after translate(): a fault may steal/recolor pages
        // (bumping the generation), and the returned pa reflects it.
        te.vpn = vpn;
        te.paBase = pa & ~pageMask;
        te.tlbSlot = tlb_slot;
        te.gen = vm.generation();
    }
    p.stats.kernelStall += out.kernel;
    Cycles t = now + out.kernel;
    Addr line = lineOf(pa);

    // --- On-chip cache (virtually indexed, physically tagged) ---------
    bool is_write = acc.kind == AccessKind::Store;
    Cache &l1 = acc.kind == AccessKind::Ifetch ? p.l1i : p.l1d;
    CacheLine *l1l = l1.access(acc.va, line);
    bool l1_data_hit = l1l != nullptr;
    bool need_l2 = !l1l || (is_write && !mesiWritable(l1l->state));

    if (!need_l2) {
        if (is_write) {
            l1l->state = Mesi::Modified;
            l1l->dirty = true;
            // Writes absorbed by the L1 are invisible on the bus but
            // still count for true/false-sharing classification.
            recordWrite(cpu, line, acc.wordMask);
        }
        out.l1Hit = true;
        p.stats.l1Hits++;
        out.stall = out.kernel;
        if (observer_)
            observer_->onAccess(cpu, acc, now, out, pa);
        maybeAudit();
        return out;
    }

    if (l1_data_hit)
        p.stats.l1Hits++; // write-permission upgrade, data was present
    else
        p.stats.l1Misses++;

    // --- External cache leg -------------------------------------------
    if (profiler_)
        profiler_->onRefStart(cpu, acc.va);
    L2Result r = l2Access(cpu, line, is_write, acc.wordMask, t, false);
    out.l2Hit = r.hit;
    out.l2Miss = r.miss;
    out.missKind = r.kind;
    // Attribution fires on exactly the misses miss_classify counted
    // as conflicts (demand only; prefetches never classify), so the
    // profiler's per-color totals reconcile with missCount[Conflict].
    if (profiler_ && r.miss && r.kind == MissKind::Conflict)
        profiler_->onConflictMiss(cpu, acc.va, pa, t);

    // --- L1 fill / upgrade --------------------------------------------
    if (l1_data_hit) {
        l1l->state = Mesi::Modified;
        l1l->dirty = true;
    } else {
        Mesi fill_state;
        if (is_write)
            fill_state = Mesi::Modified;
        else
            fill_state = r.writable ? Mesi::Exclusive : Mesi::Shared;
        CacheLine victim;
        CacheLine *nl = l1.insert(acc.va, line, fill_state, &victim);
        nl->dirty = is_write;
        if (mesiValid(victim.state)) {
            p.l1Residence.erase(victim.lineAddr);
            if (victim.dirty) {
                // Write the dirty data down into the (inclusive) L2.
                Addr vic_idx = victim.lineAddr << lineShift;
                CacheLine *l2v = p.l2.probe(vic_idx, victim.lineAddr);
                panicIfNot(l2v != nullptr,
                           "inclusion violated: dirty L1 victim absent "
                           "from L2");
                l2v->state = Mesi::Modified;
            }
        }
        p.l1Residence.insertOrAssign(line, acc.va);
    }

    out.stall = out.kernel + r.latency;

    // The verification observer sees the pure memory-system outcome,
    // before any dynamic-policy cycles land on it — and before a
    // recoloring purge mutates the state it is about to mirror.
    if (observer_)
        observer_->onAccess(cpu, acc, now, out, pa);
    maybeAudit();

    // Dynamic-policy hook: conflict misses may trigger a recoloring
    // whose kernel cost lands on this access.
    if (hasConflictObserver && r.miss && r.kind == MissKind::Conflict) {
        Cycles extra =
            conflictObserver(cpu, vpn, now + out.stall);
        out.kernel += extra;
        out.stall += extra;
        p.stats.kernelStall += extra;
    }
    return out;
}

bool
MemorySystem::isLocalAccess(CpuId cpu, const MemAccess &acc) const
{
    const Port &p = *ports[cpu];
    // Translation must come entirely from the micro-cache over a
    // still-resident TLB slot — anything else can refill the TLB,
    // fault, or move a page, all of which need the serial order.
    PageNum vpn = vm.vpnOf(acc.va);
    const TransEntry &te = p.tcache[vpn & (kTransCacheEntries - 1)];
    if (te.vpn != vpn || te.gen != vm.generation() ||
        !p.tlb.residentAt(te.tlbSlot, vpn))
        return false;
    PAddr pa = te.paBase | (acc.va & pageMask);
    Addr line = lineOf(pa);
    bool is_write = acc.kind == AccessKind::Store;
    const Cache &l1 = acc.kind == AccessKind::Ifetch ? p.l1i : p.l1d;
    if (const CacheLine *l1l = l1.probe(acc.va, line)) {
        if (!is_write || mesiWritable(l1l->state))
            return true;
    }
    // L1 miss (or write-permission upgrade): the external cache must
    // hit without an ownership upgrade, or the access needs the bus.
    const CacheLine *l2l = p.l2.probe(line << lineShift, line);
    return l2l && !(is_write && l2l->state == Mesi::Shared);
}

AccessOutcome
MemorySystem::accessLocal(CpuId cpu, const MemAccess &acc, Cycles now)
{
    Port &p = *ports[cpu];
    AccessOutcome out;

    switch (acc.kind) {
      case AccessKind::Load:
        p.stats.loads++;
        break;
      case AccessKind::Store:
        p.stats.stores++;
        break;
      case AccessKind::Ifetch:
        p.stats.ifetches++;
        break;
    }

    // The proof pinned a valid micro-cache entry: commit the TLB hit
    // (slot LRU + stats) exactly as the serial fast path does, but
    // stage the shared VM translation counter for the next barrier.
    PageNum vpn = vm.vpnOf(acc.va);
    TransEntry &te = p.tcache[vpn & (kTransCacheEntries - 1)];
    panicIfNot(p.tlb.hitAt(te.tlbSlot, vpn),
               "accessLocal without a resident TLB slot");
    p.pendingMemoNotes++;
    PAddr pa = te.paBase | (acc.va & pageMask);
    Addr line = lineOf(pa);

    bool is_write = acc.kind == AccessKind::Store;
    Cache &l1 = acc.kind == AccessKind::Ifetch ? p.l1i : p.l1d;
    CacheLine *l1l = l1.access(acc.va, line);
    bool l1_data_hit = l1l != nullptr;
    bool need_l2 = !l1l || (is_write && !mesiWritable(l1l->state));

    if (!need_l2) {
        if (is_write) {
            l1l->state = Mesi::Modified;
            l1l->dirty = true;
            recordWrite(cpu, line, acc.wordMask);
        }
        out.l1Hit = true;
        p.stats.l1Hits++;
        return out;
    }

    if (l1_data_hit)
        p.stats.l1Hits++; // write-permission upgrade, data was present
    else
        p.stats.l1Misses++;

    L2Result r = l2Access(cpu, line, is_write, acc.wordMask, now, false);
    panicIfNot(r.hit && r.kind != MissKind::Upgrade,
               "accessLocal proof violated: bus transaction on line ",
               line);
    out.l2Hit = r.hit;
    out.l2Miss = r.miss;
    out.missKind = r.kind;

    if (l1_data_hit) {
        l1l->state = Mesi::Modified;
        l1l->dirty = true;
    } else {
        Mesi fill_state;
        if (is_write)
            fill_state = Mesi::Modified;
        else
            fill_state = r.writable ? Mesi::Exclusive : Mesi::Shared;
        CacheLine victim;
        CacheLine *nl = l1.insert(acc.va, line, fill_state, &victim);
        nl->dirty = is_write;
        if (mesiValid(victim.state)) {
            p.l1Residence.erase(victim.lineAddr);
            if (victim.dirty) {
                // Write the dirty data down into the (inclusive) L2.
                Addr vic_idx = victim.lineAddr << lineShift;
                CacheLine *l2v = p.l2.probe(vic_idx, victim.lineAddr);
                panicIfNot(l2v != nullptr,
                           "inclusion violated: dirty L1 victim absent "
                           "from L2");
                l2v->state = Mesi::Modified;
            }
        }
        p.l1Residence.insertOrAssign(line, acc.va);
    }

    out.stall = r.latency;
    return out;
}

MemorySystem::PrefetchLocality
MemorySystem::classifyLocalPrefetch(CpuId cpu, VAddr va) const
{
    const Port &p = *ports[cpu];
    PageNum vpn = vm.vpnOf(va);
    PAddr pa;
    const TransEntry &te = p.tcache[vpn & (kTransCacheEntries - 1)];
    if (te.vpn == vpn && te.gen == vm.generation() &&
        p.tlb.residentAt(te.tlbSlot, vpn)) {
        pa = te.paBase | (va & pageMask);
    } else {
        // The drop decisions read only this CPU's TLB and the (frozen
        // during a parallel phase) page table, so they are local even
        // for non-private target pages.
        if (!p.tlb.contains(vpn))
            return PrefetchLocality::Drop;
        auto mapped = vm.translateIfMapped(va);
        if (!mapped)
            return PrefetchLocality::Drop;
        pa = *mapped;
    }
    Addr line = lineOf(pa);
    if (p.l2.probe(line << lineShift, line) ||
        p.prefetches.contains(line))
        return PrefetchLocality::Present;
    return PrefetchLocality::No;
}

void
MemorySystem::prefetchLocal(CpuId cpu, PrefetchLocality kind)
{
    Port &p = *ports[cpu];
    p.stats.prefetchesIssued++;
    if (kind == PrefetchLocality::Drop)
        p.stats.prefetchesDropped++;
}

void
MemorySystem::commitMemoNotes()
{
    for (auto &p : ports) {
        if (p->pendingMemoNotes != 0) {
            vm.noteMemoizedTranslations(p->pendingMemoNotes);
            p->pendingMemoNotes = 0;
        }
    }
}

void
MemorySystem::setConflictObserver(ConflictObserver obs)
{
    conflictObserver = std::move(obs);
    hasConflictObserver = static_cast<bool>(conflictObserver);
}

void
MemorySystem::setAuditEvery(std::uint64_t every)
{
    auditEvery_ = every;
    untilAudit_ = every;
}

void
MemorySystem::auditFull() const
{
    auditInvariants();
    vm.auditPageTable();
    for (std::uint32_t q = 0; q < cfg.numCpus; q++) {
        const Port &p = *ports[q];
        p.tlb.audit();
        p.shadow.audit();
        // Every micro-cache entry stamped with the current mapping
        // generation must agree with the page table; stale-generation
        // entries are unreachable by construction and need no check.
        for (const TransEntry &te : p.tcache) {
            if (te.vpn == ~PageNum{0} || te.gen != vm.generation())
                continue;
            auto mapped = vm.translateIfMapped(te.vpn * cfg.pageBytes);
            panicIfNot(mapped && *mapped == te.paBase,
                       "audit: stale translation micro-cache entry "
                       "for vpn ", te.vpn, " on cpu ", q);
        }
    }
}

void
MemorySystem::purgePage(VAddr va)
{
    auto pa = vm.translateIfMapped(va);
    if (!pa)
        return;
    if (observer_)
        observer_->onPurge(va, *pa);
    Addr first_line = *pa >> lineShift;
    std::uint64_t lines = cfg.linesPerPage();
    PageNum vpn = vm.vpnOf(va);

    for (std::uint64_t i = 0; i < lines; i++) {
        Addr line = first_line + i;
        Addr idx = line << lineShift;
        for (std::uint32_t m = holderMask(line); m != 0; m &= m - 1) {
            auto q = static_cast<CpuId>(std::countr_zero(m));
            Port &p = *ports[q];
            CacheLine *l = p.l2.probe(idx, line);
            panicIfNot(l != nullptr, "directory names cpu ", q,
                       " as holder of absent line ", line);
            if (l->state == Mesi::Modified) {
                // Charge the writeback where the bus actually is:
                // acquiring "at cycle 0" would book the entire
                // absolute bus time as phantom queueing delay.
                bus.acquire(BusKind::Writeback, bus.freeAt());
            }
            p.l2.invalidate(idx, line);
            dropHolder(line, q);
            backInvalidateL1(q, line);
            if (profiler_)
                profiler_->onEvict(q, line, EvictCause::Recolor);
        }
        // In-flight prefetch completions are tracked independently of
        // residency (an invalidated prefetched line keeps its entry),
        // so the drop must visit every CPU, not just holders.
        for (std::uint32_t q = 0; q < cfg.numCpus; q++)
            ports[q]->prefetches.erase(line);
        sharing.erase(line);
    }
    // Shoot the page down from every TLB and drop the memoized
    // translation with it (the caller is about to change or retire
    // the mapping; generation tagging would catch a remap anyway,
    // but purge-without-remap must also kill the TLB-resident bit).
    for (std::uint32_t q = 0; q < cfg.numCpus; q++) {
        Port &p = *ports[q];
        p.tlb.invalidate(vpn);
        TransEntry &te = p.tcache[vpn & (kTransCacheEntries - 1)];
        if (te.vpn == vpn)
            te.vpn = ~PageNum{0};
    }
}

std::vector<std::uint8_t>
MemorySystem::colorFootprint(CpuId cpu) const
{
    panicIfNot(cpu < ports.size(), "footprint of out-of-range CPU ",
               cpu);
    std::vector<std::uint8_t> mask(cfg.numColors(), 0);
    // A line's color is its physical page's color: reconstruct the
    // physical address from the line number and divide down.
    ports[cpu]->l2.forEachValid([&](const CacheLine &l) {
        PageNum page = (l.lineAddr << lineShift) / cfg.pageBytes;
        mask[idx.pageColorOf(page)] = 1;
    });
    return mask;
}

std::uint64_t
MemorySystem::evictColors(CpuId cpu,
                          const std::vector<std::uint8_t> &mask)
{
    panicIfNot(cpu < ports.size(), "evict on out-of-range CPU ", cpu);
    panicIfNot(mask.size() == cfg.numColors(),
               "evictColors mask has ", mask.size(), " entries, want ",
               cfg.numColors());
    Port &p = *ports[cpu];

    // Collect first: invalidation mutates the structure forEachValid
    // is walking.
    std::vector<Addr> doomed;
    p.l2.forEachValid([&](const CacheLine &l) {
        PageNum page = (l.lineAddr << lineShift) / cfg.pageBytes;
        if (mask[idx.pageColorOf(page)])
            doomed.push_back(l.lineAddr);
    });

    for (Addr line : doomed) {
        Addr idx = line << lineShift;
        CacheLine *l = p.l2.probe(idx, line);
        if (!l)
            continue;
        if (l->state == Mesi::Modified) {
            // Same accounting as purgePage: charge the writeback from
            // where the bus actually is, not from cycle 0.
            bus.acquire(BusKind::Writeback, bus.freeAt());
        }
        p.l2.invalidate(idx, line);
        dropHolder(line, cpu);
        backInvalidateL1(cpu, line);
        p.prefetches.erase(line);
        if (profiler_)
            profiler_->onEvict(cpu, line, EvictCause::ContextSwitch);
        // Replacement, not coherence: the line was displaced by a
        // competitor's data, it did not change owners. The sharing
        // history and the miss shadow stay, so refetching it
        // classifies as a conflict/capacity miss rather than cold.
    }
    return doomed.size();
}

void
MemorySystem::flushTlb(CpuId cpu)
{
    panicIfNot(cpu < ports.size(), "TLB flush on out-of-range CPU ",
               cpu);
    ports[cpu]->tlb.flush();
    // The translation micro-cache needs no sweep: an entry is only
    // usable while hitAt() confirms its TLB slot still holds the vpn.
}

MemorySystem::L2Result
MemorySystem::l2Access(CpuId cpu, Addr line, bool is_write,
                       std::uint32_t word_mask, Cycles now,
                       bool is_prefetch)
{
    Port &p = *ports[cpu];
    Addr idx = line << lineShift;
    L2Result r;

    CacheLine *l2l = p.l2.access(idx, line);

    bool shadow_hit = false;
    bool seen = false;
    if (!is_prefetch) {
        shadow_hit = p.shadow.accessAndUpdate(line);
        seen = p.cold.seenBefore(line);
    }

    if (l2l) {
        r.hit = true;
        // Was this line brought in by a prefetch that is still in
        // flight? If so the demand reference waits out the remainder.
        Cycles *pf = p.prefetches.find(line);
        if (pf && !is_prefetch) {
            p.stats.prefetchesUseful++;
            if (*pf > now) {
                Cycles wait = *pf - now;
                r.latency += wait;
                p.stats.prefetchLateStall += wait;
                now += wait;
            }
            p.prefetches.erase(line);
        }

        if (is_write && l2l->state == Mesi::Shared) {
            // Ownership upgrade: address-only bus transaction that
            // invalidates the other copies.
            Cycles start = bus.acquire(BusKind::Upgrade, now);
            Cycles lat = (start - now) + cfg.busUpgradeCycles;
            invalidateOthers(cpu, line, word_mask, now);
            l2l->state = Mesi::Modified;
            r.latency += lat;
            r.kind = MissKind::Upgrade;
            auto k = static_cast<std::size_t>(MissKind::Upgrade);
            p.stats.missCount[k]++;
            p.stats.missStall[k] += lat;
        } else {
            if (is_write) {
                l2l->state = Mesi::Modified; // silent E->M included
                recordWrite(cpu, line, word_mask);
            }
            if (!is_prefetch) {
                r.latency += cfg.l2HitCycles;
                p.stats.l2HitStall += cfg.l2HitCycles;
            }
        }
        if (!is_prefetch)
            p.stats.l2Hits++;
        r.writable = mesiWritable(l2l->state);
        return r;
    }

    // ---- External cache miss ------------------------------------------
    r.miss = true;
    if (!is_prefetch) {
        p.stats.l2Misses++;
        r.kind = classifyMiss(cpu, line, word_mask, seen, shadow_hit);
    }

    // Snoop the other external caches — the directory names the
    // holders, so this walks actual sharers instead of every CPU. A
    // line that is Exclusive in a remote L2 may still be dirty in
    // that CPU's on-chip cache (the silent E->M upgrade happens
    // above the L2), so the snoop must probe the L1 as well.
    std::uint32_t remote = holderMask(line) & ~(1u << cpu);
    bool shared_elsewhere = remote != 0;
    CpuId dirty_owner = kNoCpu;
    for (std::uint32_t m = remote; m != 0; m &= m - 1) {
        auto q = static_cast<CpuId>(std::countr_zero(m));
        CacheLine *rl = ports[q]->l2.probe(idx, line);
        panicIfNot(rl != nullptr, "directory names cpu ", q,
                   " as holder of absent line ", line);
        if (rl->state == Mesi::Modified) {
            dirty_owner = q;
        } else if (rl->state == Mesi::Exclusive) {
            if (const Addr *res = ports[q]->l1Residence.find(line)) {
                CacheLine *c = ports[q]->l1d.probe(*res, line);
                if (c && c->dirty) {
                    rl->state = Mesi::Modified;
                    dirty_owner = q;
                }
            }
        }
    }

    Cycles start = bus.acquire(BusKind::Data, now);
    Cycles service = dirty_owner != kNoCpu ? cfg.remoteDirtyLatencyCycles
                                           : cfg.memLatencyCycles;
    Cycles lat = (start - now) + service;
    r.latency += lat;

    Mesi new_state;
    if (is_write) {
        invalidateOthers(cpu, line, word_mask, now);
        new_state = Mesi::Modified;
    } else {
        if (dirty_owner != kNoCpu) {
            // Cache-to-cache transfer downgrades the owner to Shared.
            CacheLine *ol = ports[dirty_owner]->l2.probe(idx, line);
            ol->state = Mesi::Shared;
            // The owner's L1 copy loses write permission too.
            if (const Addr *res =
                    ports[dirty_owner]->l1Residence.find(line)) {
                Port &op = *ports[dirty_owner];
                if (CacheLine *c = op.l1d.probe(*res, line)) {
                    c->state = Mesi::Shared;
                    c->dirty = false;
                } else if (CacheLine *c2 = op.l1i.probe(*res, line)) {
                    c2->state = Mesi::Shared;
                    c2->dirty = false;
                }
            }
        } else if (shared_elsewhere) {
            // Clean remote copies can be downgraded E->S lazily; all
            // that matters is that we must insert as Shared.
            for (std::uint32_t m = remote; m != 0; m &= m - 1) {
                auto q = static_cast<CpuId>(std::countr_zero(m));
                if (CacheLine *rl = ports[q]->l2.probe(idx, line)) {
                    if (rl->state == Mesi::Exclusive)
                        rl->state = Mesi::Shared;
                }
            }
        }
        new_state = shared_elsewhere ? Mesi::Shared : Mesi::Exclusive;
    }

    CacheLine victim;
    p.l2.insert(idx, line, new_state, &victim);
    addHolder(line, cpu);
    if (mesiValid(victim.state))
        evictL2Victim(cpu, victim, now);

    if (is_write)
        recordWrite(cpu, line, word_mask);

    if (!is_prefetch) {
        auto k = static_cast<std::size_t>(r.kind);
        p.stats.missCount[k]++;
        p.stats.missStall[k] += lat;
    }
    r.writable = mesiWritable(new_state);
    return r;
}

Cycles
MemorySystem::prefetch(CpuId cpu, VAddr va, Cycles now)
{
    Cycles stall = prefetchImpl(cpu, va, now);
    if (observer_)
        observer_->onPrefetch(cpu, va, now, stall);
    return stall;
}

Cycles
MemorySystem::prefetchImpl(CpuId cpu, VAddr va, Cycles now)
{
    panicIfNot(cpu < ports.size(), "prefetch from out-of-range CPU ", cpu);
    Port &p = *ports[cpu];
    p.stats.prefetchesIssued++;

    // R10000 semantics: prefetches for pages not mapped in the TLB are
    // dropped and do not cause exceptions (Section 6.2). The micro-
    // cache answers the common resident case without hashing; neither
    // probe updates TLB stats or LRU (contains() never did).
    PageNum vpn = vm.vpnOf(va);
    PAddr pa;
    const TransEntry &te = p.tcache[vpn & (kTransCacheEntries - 1)];
    if (te.vpn == vpn && te.gen == vm.generation() &&
        p.tlb.residentAt(te.tlbSlot, vpn)) {
        pa = te.paBase | (va & pageMask);
    } else {
        if (!p.tlb.contains(vpn)) {
            p.stats.prefetchesDropped++;
            return 0;
        }
        auto mapped = vm.translateIfMapped(va);
        if (!mapped) {
            p.stats.prefetchesDropped++;
            return 0;
        }
        pa = *mapped;
    }
    Addr line = lineOf(pa);
    Addr idx = line << lineShift;

    if (p.l2.probe(idx, line) || p.prefetches.contains(line))
        return 0; // already present or already in flight

    // Count in-flight prefetches; the queue holds maxOutstanding, one
    // more stalls the processor until a slot frees up.
    Cycles stall = 0;
    std::uint32_t in_flight = 0;
    Cycles earliest = 0;
    p.prefetches.forEach([&](Addr, Cycles ready) {
        if (ready > now) {
            in_flight++;
            if (in_flight == 1 || ready < earliest)
                earliest = ready;
        }
    });
    if (in_flight >= cfg.maxOutstandingPrefetches) {
        stall = earliest - now;
        p.stats.prefetchFullStall += stall;
        now = earliest;
    }

    // Prefetch fills evict like demand fills; the eviction is
    // attributed to the prefetched address's entity.
    if (profiler_)
        profiler_->onRefStart(cpu, va);
    L2Result r = l2Access(cpu, line, false, 0, now, true);
    p.prefetches.insertOrAssign(line, now + r.latency);

    // Keep the completion map from growing without bound when
    // prefetched lines are never demanded.
    if (p.prefetches.size() > 4096) {
        p.prefetches.eraseIf(
            [&](Addr, Cycles ready) { return ready <= now; });
    }
    return stall;
}

void
MemorySystem::invalidateOthers(CpuId writer, Addr line,
                               std::uint32_t word_mask, Cycles now)
{
    (void)now;
    Addr idx = line << lineShift;
    bool any = false;
    std::uint32_t others = holderMask(line) & ~(1u << writer);
    for (std::uint32_t m = others; m != 0; m &= m - 1) {
        auto q = static_cast<CpuId>(std::countr_zero(m));
        if (ports[q]->l2.invalidate(idx, line)) {
            any = true;
            dropHolder(line, q);
            backInvalidateL1(q, line);
            SharingInfo &info = sharing[line];
            info.invalidatedMask |= 1u << q;
            info.writtenSince[q] = 0;
        }
    }
    if (any || sharing.contains(line))
        recordWrite(writer, line, word_mask);
}

void
MemorySystem::recordWrite(CpuId writer, Addr line, std::uint32_t word_mask)
{
    (void)writer;
    auto it = sharing.find(line);
    if (it == sharing.end() || it->second.invalidatedMask == 0)
        return;
    std::uint32_t mask = it->second.invalidatedMask;
    while (mask) {
        unsigned q = static_cast<unsigned>(std::countr_zero(mask));
        it->second.writtenSince[q] |= word_mask;
        mask &= mask - 1;
    }
}

void
MemorySystem::evictL2Victim(CpuId cpu, const CacheLine &victim, Cycles now)
{
    if (profiler_)
        profiler_->onEvict(cpu, victim.lineAddr, EvictCause::Replace);
    dropHolder(victim.lineAddr, cpu);
    backInvalidateL1(cpu, victim.lineAddr);
    if (victim.state == Mesi::Modified)
        bus.acquire(BusKind::Writeback, now);
}

void
MemorySystem::backInvalidateL1(CpuId cpu, Addr line)
{
    Port &p = *ports[cpu];
    const Addr *res = p.l1Residence.find(line);
    if (!res)
        return;
    Addr index_addr = *res;
    if (!p.l1d.invalidate(index_addr, line))
        p.l1i.invalidate(index_addr, line);
    p.l1Residence.erase(line);
}

MissKind
MemorySystem::classifyMiss(CpuId cpu, Addr line, std::uint32_t word_mask,
                           bool seen_before, bool shadow_hit)
{
    auto it = sharing.find(line);
    if (it != sharing.end() &&
        (it->second.invalidatedMask & (1u << cpu))) {
        bool is_true = (word_mask & it->second.writtenSince[cpu]) != 0;
        it->second.invalidatedMask &= ~(1u << cpu);
        it->second.writtenSince[cpu] = 0;
        if (it->second.invalidatedMask == 0)
            sharing.erase(it);
        return is_true ? MissKind::TrueSharing : MissKind::FalseSharing;
    }
    if (!seen_before)
        return MissKind::Cold;
    return shadow_hit ? MissKind::Conflict : MissKind::Capacity;
}

const CpuMemStats &
MemorySystem::cpuStats(CpuId cpu) const
{
    panicIfNot(cpu < ports.size(), "stats for out-of-range CPU ", cpu);
    return ports[cpu]->stats;
}

CpuMemStats
MemorySystem::totalStats() const
{
    CpuMemStats total;
    for (const auto &p : ports) {
        const CpuMemStats &s = p->stats;
        total.loads += s.loads;
        total.stores += s.stores;
        total.ifetches += s.ifetches;
        total.l1Hits += s.l1Hits;
        total.l1Misses += s.l1Misses;
        total.l2Hits += s.l2Hits;
        total.l2Misses += s.l2Misses;
        total.tlbMisses += s.tlbMisses;
        total.pageFaults += s.pageFaults;
        for (std::size_t k = 0; k < total.missCount.size(); k++) {
            total.missCount[k] += s.missCount[k];
            total.missStall[k] += s.missStall[k];
        }
        total.l2HitStall += s.l2HitStall;
        total.kernelStall += s.kernelStall;
        total.prefetchLateStall += s.prefetchLateStall;
        total.prefetchFullStall += s.prefetchFullStall;
        total.prefetchesIssued += s.prefetchesIssued;
        total.prefetchesDropped += s.prefetchesDropped;
        total.prefetchesUseful += s.prefetchesUseful;
    }
    return total;
}

void
MemorySystem::auditInvariants() const
{
    // line -> (holder mask, per-holder state list is reconstructed on
    // demand); dirty means L2-Modified or dirty in the holder's L1.
    std::unordered_map<Addr, std::uint32_t> holder_mask;
    std::unordered_map<Addr, std::uint32_t> dirty_mask;
    std::unordered_map<Addr, std::uint32_t> exclusive_mask;

    for (std::uint32_t q = 0; q < cfg.numCpus; q++) {
        const Port &p = *ports[q];
        p.l2.forEachValid([&](const CacheLine &l) {
            holder_mask[l.lineAddr] |= 1u << q;
            if (l.state == Mesi::Modified)
                dirty_mask[l.lineAddr] |= 1u << q;
            if (l.state == Mesi::Exclusive)
                exclusive_mask[l.lineAddr] |= 1u << q;
        });

        // Inclusion: every L1 line is in the residence map and in
        // the same CPU's L2; dirty L1 lines sit over writable L2
        // lines.
        auto audit_l1 = [&](const Cache &l1, const char *which) {
            l1.forEachValid([&](const CacheLine &l) {
                const Addr *res = p.l1Residence.find(l.lineAddr);
                panicIfNot(res != nullptr,
                           "audit: ", which, " line ", l.lineAddr,
                           " on cpu ", q, " missing from residence");
                const CacheLine *l2l = p.l2.probe(
                    l.lineAddr << lineShift, l.lineAddr);
                panicIfNot(l2l != nullptr, "audit: inclusion violated "
                           "for line ", l.lineAddr, " on cpu ", q);
                if (l.dirty) {
                    panicIfNot(mesiWritable(l2l->state),
                               "audit: dirty L1 line ", l.lineAddr,
                               " over non-writable L2 on cpu ", q);
                    dirty_mask[l.lineAddr] |= 1u << q;
                }
            });
        };
        audit_l1(p.l1d, "L1D");
        audit_l1(p.l1i, "L1I");
    }

    // The incremental MESI directory must agree exactly with the
    // holder sets reconstructed from the caches themselves.
    std::size_t directory_entries = 0;
    holders_.forEach([&](Addr line, std::uint32_t mask) {
        directory_entries++;
        auto it = holder_mask.find(line);
        panicIfNot(it != holder_mask.end() && it->second == mask,
                   "audit: directory mask ", mask, " for line ", line,
                   " disagrees with caches");
    });
    panicIfNot(directory_entries == holder_mask.size(),
               "audit: directory has ", directory_entries,
               " lines, caches hold ", holder_mask.size());

    for (const auto &[line, mask] : holder_mask) {
        unsigned holders = std::popcount(mask);
        std::uint32_t dirty = dirty_mask.contains(line)
                                  ? dirty_mask.at(line)
                                  : 0;
        std::uint32_t excl = exclusive_mask.contains(line)
                                 ? exclusive_mask.at(line)
                                 : 0;
        panicIfNot(dirty == 0 || holders == 1,
                   "audit: line ", line, " dirty on cpu mask ", dirty,
                   " but valid in ", holders, " caches");
        panicIfNot(excl == 0 || holders == 1, "audit: line ", line,
                   " Exclusive but held by ", holders, " caches");
    }
}

void
MemorySystem::reset()
{
    for (auto &p : ports) {
        p->l1d.reset();
        p->l1i.reset();
        p->l2.reset();
        p->tlb.flush();
        p->shadow.reset();
        p->cold.reset();
        p->l1Residence.clear();
        p->prefetches.clear();
        std::fill(p->tcache.begin(), p->tcache.end(), TransEntry{});
        p->pendingMemoNotes = 0;
        p->stats = CpuMemStats{};
    }
    bus.reset();
    sharing.clear();
    holders_.clear();
    if (profiler_)
        profiler_->onReset();
}

std::vector<std::uint64_t>
MemorySystem::colorOccupancy() const
{
    std::vector<std::uint64_t> counts(cfg.numColors(), 0);
    for (const auto &p : ports) {
        p->l2.forEachValid([&](const CacheLine &l) {
            PageNum page = (l.lineAddr << lineShift) / cfg.pageBytes;
            counts[idx.pageColorOf(page)]++;
        });
    }
    return counts;
}

} // namespace cdpc
