/**
 * @file
 * ConflictProfilerHook: the memory system's half of the streaming
 * conflict-attribution profiler (src/obs/profile.h implements it).
 *
 * The hierarchy reports the raw events attribution needs — which
 * reference is driving the external-cache leg, which lines that leg
 * (or a recoloring purge, or a tenant context switch) evicted, and
 * which demand misses classified as conflicts — and the profiler
 * turns them into per-color evictor→victim matrices. The interface
 * is deliberately header-only and depends on nothing but the common
 * types, so src/obs can implement it without linking src/mem.
 *
 * Timing honesty: none of these hooks return cycles; a profiled run
 * charges exactly the stalls an unprofiled run would. The profiler
 * does need the global reference order (last-evictor tracking is
 * order-sensitive), so installing one turns
 * MemorySystem::parallelSafe() false and the epoch engine degrades
 * profiled nests to serial, like every other order-sensitive hook.
 */

#ifndef CDPC_MEM_PROFILE_HOOK_H
#define CDPC_MEM_PROFILE_HOOK_H

#include "common/types.h"

namespace cdpc
{

/** Why a valid external-cache line left a CPU's cache. */
enum class EvictCause : unsigned char
{
    /** Replacement by a fill (set pressure — the conflict source). */
    Replace,
    /** Recoloring remap purge (MemorySystem::purgePage). */
    Recolor,
    /** Multi-tenant context switch (MemorySystem::evictColors). */
    ContextSwitch,
};

/** Observation interface for conflict attribution. */
class ConflictProfilerHook
{
  public:
    virtual ~ConflictProfilerHook() = default;

    /**
     * A reference (demand or software prefetch) by @p cpu to @p va
     * is about to run its external-cache leg; any replacement
     * evictions that leg causes are attributed to @p va's entity.
     */
    virtual void onRefStart(CpuId cpu, VAddr va) = 0;

    /**
     * @p cpu's external cache dropped valid line @p victim_line for
     * @p cause. Coherence invalidations are deliberately not
     * reported: their re-misses classify as sharing, never conflict.
     */
    virtual void onEvict(CpuId cpu, Addr victim_line,
                         EvictCause cause) = 0;

    /**
     * A demand reference by @p cpu to @p va (physical @p pa) missed
     * and classified MissKind::Conflict at local time @p now. Fires
     * exactly once per classified conflict miss, so the profiler's
     * per-color totals reconcile exactly with the miss_classify
     * counters.
     */
    virtual void onConflictMiss(CpuId cpu, VAddr va, PAddr pa,
                                Cycles now) = 0;

    /** The hierarchy was reset(); drop all per-line state. */
    virtual void onReset() = 0;
};

} // namespace cdpc

#endif // CDPC_MEM_PROFILE_HOOK_H
