/**
 * @file
 * External-cache miss classification.
 *
 * The paper's memory-system-behaviour graphs (Figures 2, 6, 7, 8)
 * split off-chip stall time into *replacement* misses — further
 * separable into cold, capacity and conflict — and *communication*
 * misses, classified as true or false sharing following Dubois et
 * al. [8]. This header provides the two pieces of machinery:
 *
 *  - LruShadow: a fully associative LRU cache of the same capacity as
 *    the real external cache. A replacement miss that *hits* in the
 *    shadow would not have occurred with full associativity, so it is
 *    a conflict miss; a shadow miss on a previously seen line is a
 *    capacity miss; a never-seen line is a cold miss. Conflict misses
 *    are precisely the ones page mapping policies can remove.
 *
 *  - Sharing classification is performed by the coherence layer
 *    (MemorySystem) using per-line written-word masks: a miss on a
 *    line this CPU lost to an invalidation is true sharing when the
 *    words now accessed intersect the words written by the
 *    invalidating writer, and false sharing otherwise.
 */

#ifndef CDPC_MEM_MISS_CLASSIFY_H
#define CDPC_MEM_MISS_CLASSIFY_H

#include <cstdint>
#include <list>
#include <unordered_map>
#include <unordered_set>

#include "common/types.h"

namespace cdpc
{

/** Classification of one external-cache miss. */
enum class MissKind : unsigned char
{
    Cold,
    Capacity,
    Conflict,
    TrueSharing,
    FalseSharing,
    Upgrade, ///< write hit on a Shared line (ownership only, no data)
};

/** @return a stable display name for a MissKind. */
const char *missKindName(MissKind k);

/**
 * Fully associative LRU shadow tag store, same capacity as the real
 * cache, used to tell conflict misses from capacity misses.
 */
class LruShadow
{
  public:
    explicit LruShadow(std::uint64_t capacity_lines);

    /**
     * Record an access to @p line and report whether it hit.
     * Must be fed exactly the demand accesses the real cache sees.
     */
    bool accessAndUpdate(Addr line);

    /** Presence test without LRU update. */
    bool contains(Addr line) const;

    void reset();

    std::uint64_t capacity() const { return capacityLines; }
    std::size_t size() const { return map.size(); }

  private:
    std::uint64_t capacityLines;
    std::list<Addr> lru;
    std::unordered_map<Addr, std::list<Addr>::iterator> map;
};

/**
 * Tracks which physical lines a CPU has ever referenced, to identify
 * cold misses.
 */
class ColdTracker
{
  public:
    /** @return true when @p line was seen before (and record it). */
    bool
    seenBefore(Addr line)
    {
        return !seen.insert(line).second;
    }

    void reset() { seen.clear(); }
    std::size_t linesSeen() const { return seen.size(); }

  private:
    std::unordered_set<Addr> seen;
};

} // namespace cdpc

#endif // CDPC_MEM_MISS_CLASSIFY_H
