/**
 * @file
 * External-cache miss classification.
 *
 * The paper's memory-system-behaviour graphs (Figures 2, 6, 7, 8)
 * split off-chip stall time into *replacement* misses — further
 * separable into cold, capacity and conflict — and *communication*
 * misses, classified as true or false sharing following Dubois et
 * al. [8]. This header provides the two pieces of machinery:
 *
 *  - LruShadow: a fully associative LRU cache of the same capacity as
 *    the real external cache. A replacement miss that *hits* in the
 *    shadow would not have occurred with full associativity, so it is
 *    a conflict miss; a shadow miss on a previously seen line is a
 *    capacity miss; a never-seen line is a cold miss. Conflict misses
 *    are precisely the ones page mapping policies can remove.
 *
 *  - Sharing classification is performed by the coherence layer
 *    (MemorySystem) using per-line written-word masks: a miss on a
 *    line this CPU lost to an invalidation is true sharing when the
 *    words now accessed intersect the words written by the
 *    invalidating writer, and false sharing otherwise.
 *
 * LruShadow runs on every demand access to the external cache, so it
 * is built flat: a fixed slot pool threaded into an intrusive LRU
 * list by slot indexes, with a flat open-addressing index mapping
 * line -> slot. Same true-LRU semantics as the previous
 * list+unordered_map version (see tests/test_fastpath_equiv.cc), no
 * per-access allocation.
 */

#ifndef CDPC_MEM_MISS_CLASSIFY_H
#define CDPC_MEM_MISS_CLASSIFY_H

#include <cstdint>
#include <vector>

#include "common/flat_hash.h"
#include "common/types.h"

namespace cdpc
{

/** Classification of one external-cache miss. */
enum class MissKind : unsigned char
{
    Cold,
    Capacity,
    Conflict,
    TrueSharing,
    FalseSharing,
    Upgrade, ///< write hit on a Shared line (ownership only, no data)
};

/** @return a stable display name for a MissKind. */
const char *missKindName(MissKind k);

/**
 * Fully associative LRU shadow tag store, same capacity as the real
 * cache, used to tell conflict misses from capacity misses.
 */
class LruShadow
{
  public:
    explicit LruShadow(std::uint64_t capacity_lines);

    /**
     * Record an access to @p line and report whether it hit.
     * Must be fed exactly the demand accesses the real cache sees.
     */
    bool accessAndUpdate(Addr line);

    /** Presence test without LRU update. */
    bool contains(Addr line) const;

    void reset();

    std::uint64_t capacity() const { return capacityLines; }
    std::size_t size() const { return index.size(); }

    /**
     * Audit the intrusive-LRU structure: list and index must agree on
     * the resident set, links must be symmetric, and every ever-used
     * slot must sit on the list exactly once. panic()s on violation.
     */
    void audit() const;

  private:
    static constexpr std::uint32_t kNil = ~std::uint32_t{0};

    /** One slot of the intrusive LRU list. */
    struct Slot
    {
        Addr line = 0;
        std::uint32_t prev = kNil;
        std::uint32_t next = kNil;
    };

    void unlink(std::uint32_t s);
    void pushFront(std::uint32_t s);

    std::uint64_t capacityLines;
    std::vector<Slot> slots;
    /** Slots [used, capacity) have never held a line. */
    std::uint32_t used = 0;
    std::uint32_t head = kNil; ///< most recently used
    std::uint32_t tail = kNil; ///< least recently used
    FlatHashMap<std::uint32_t> index; ///< line -> slot
};

/**
 * Tracks which physical lines a CPU has ever referenced, to identify
 * cold misses.
 */
class ColdTracker
{
  public:
    ColdTracker() : seen(4096) {}

    /** @return true when @p line was seen before (and record it). */
    bool
    seenBefore(Addr line)
    {
        return !seen.insert(line);
    }

    void reset() { seen.clear(); }
    std::size_t linesSeen() const { return seen.size(); }

  private:
    FlatHashSet seen;
};

} // namespace cdpc

#endif // CDPC_MEM_MISS_CLASSIFY_H
