#include "ir/exec.h"

#include "common/intmath.h"
#include "common/logging.h"

namespace cdpc
{

RunGenerator::RunGenerator(const Program &program, const LoopNest &nest,
                           CpuId cpu, std::uint32_t ncpus)
    : program(program), nest(nest)
{
    std::size_t depth = nest.bounds.size();
    panicIfNot(depth > 0, "RunGenerator over an empty nest");
    lo.resize(depth);
    hi.resize(depth);
    for (std::size_t d = 0; d < depth; d++) {
        lo[d] = 0;
        hi[d] = nest.bounds[d];
    }
    if (nest.kind == NestKind::Parallel) {
        nest.partition.range(nest.bounds[nest.parallelDim], ncpus, cpu,
                             lo[nest.parallelDim], hi[nest.parallelDim]);
    }
    idx = lo;
    for (std::size_t d = 0; d < depth; d++) {
        if (lo[d] >= hi[d])
            done = true; // this CPU got no iterations
    }
}

bool
RunGenerator::bumpOdometer()
{
    // The innermost dimension is the run axis; the odometer spans the
    // rest, innermost-of-the-rest varying fastest.
    std::size_t inner = innerDim();
    if (nest.bounds.size() == 1)
        return false;
    std::size_t d = inner; // will be decremented before first use
    while (d > 0) {
        d--;
        if (++idx[d] < hi[d])
            return true;
        idx[d] = lo[d];
    }
    return false;
}

void
RunGenerator::buildRun(Run &out) const
{
    std::size_t inner = innerDim();
    std::uint64_t count = hi[inner] - lo[inner];
    const AffineRef &ref = nest.refs[refCursor];
    const ArrayDecl &arr = program.arrays[ref.arrayId];

    std::int64_t flat = ref.constElems;
    std::int64_t stride_elems = 0;
    for (const AffineTerm &t : ref.terms) {
        if (t.loopDim == inner) {
            flat += t.coeffElems * static_cast<std::int64_t>(lo[inner]);
            stride_elems += t.coeffElems;
        } else {
            flat += t.coeffElems * static_cast<std::int64_t>(idx[t.loopDim]);
        }
    }

    out.start = arr.base +
                static_cast<std::int64_t>(arr.elemBytes) * flat;
    out.strideBytes = stride_elems * arr.elemBytes;
    out.count = count;
    out.isWrite = ref.isWrite;
    out.ref = &ref;
    out.wrapModBytes = ref.wrapModElems * arr.elemBytes;
    out.wrapBase = arr.base;

    // Split the nest's per-iteration instruction budget across refs;
    // the first ref absorbs the rounding remainder.
    Insts total = static_cast<Insts>(nest.instsPerIter) * count;
    Insts share = total / nest.refs.size();
    out.insts = refCursor == 0
                    ? total - share * (nest.refs.size() - 1)
                    : share;
}

bool
RunGenerator::next(Run &out)
{
    if (done)
        return false;
    started = true;

    if (nest.refs.empty()) {
        // Compute-only nest: one instruction-charge run per odometer
        // position covering the whole innermost extent.
        std::size_t inner = innerDim();
        out = Run{};
        out.count = 0;
        out.insts = static_cast<Insts>(nest.instsPerIter) *
                    (hi[inner] - lo[inner]);
        out.ref = nullptr;
        if (!bumpOdometer())
            done = true;
        return true;
    }

    buildRun(out);
    if (++refCursor == nest.refs.size()) {
        refCursor = 0;
        if (!bumpOdometer())
            done = true;
    }
    return true;
}

RunCursor::RunCursor(const Program &program, const LoopNest &nest,
                     CpuId cpu, std::uint32_t ncpus,
                     std::uint32_t line_bytes)
    : gen(program, nest, cpu, ncpus), lineBytes(line_bytes)
{
    panicIfNot(isPowerOf2(line_bytes), "line size must be a power of 2");
}

bool
RunCursor::refill()
{
    while (gen.next(run)) {
        if (run.ref == nullptr || run.count > 0) {
            runValid = true;
            consumed = 0;
            pos = static_cast<std::int64_t>(run.start);
            instsLeft = run.insts;
            return true;
        }
    }
    runValid = false;
    return false;
}

VAddr
RunCursor::elementAddr() const
{
    if (run.wrapModBytes == 0)
        return static_cast<VAddr>(pos);
    std::int64_t off = pos - static_cast<std::int64_t>(run.wrapBase);
    return run.wrapBase +
           posMod(off, static_cast<std::uint64_t>(run.wrapModBytes));
}

bool
RunCursor::next(LineAccess &out)
{
    if (!runValid && !refill())
        return false;

    // Compute-only run: emit the instruction charge and retire it.
    if (run.ref == nullptr) {
        out = LineAccess{};
        out.insts = instsLeft;
        runValid = false;
        return true;
    }

    std::uint64_t elems_left_before = run.count - consumed;
    VAddr first = elementAddr();
    std::uint64_t line = first / lineBytes;

    std::uint32_t mask = 0;
    std::uint32_t elems = 0;

    auto add_word_bits = [&](VAddr addr) {
        // The mask has one bit per 8-byte word; clamp so a >256B line
        // (rejected by MachineConfig::validate, but reachable through
        // a hand-built config) degrades instead of shifting by >=32.
        std::uint64_t word = (addr % lineBytes) / 8;
        mask |= std::uint32_t{1} << (word < 32 ? word : 31);
    };

    if (run.strideBytes == 0 && run.wrapModBytes == 0) {
        // A loop-invariant reference: every iteration hits one word.
        add_word_bits(first);
        elems = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(elems_left_before, ~0u));
        consumed += elems;
    } else {
        while (consumed < run.count) {
            VAddr addr = elementAddr();
            if (elems > 0 && addr / lineBytes != line)
                break;
            add_word_bits(addr);
            elems++;
            consumed++;
            pos += run.strideBytes;
        }
    }

    out.va = first;
    out.wordMask = mask;
    out.elems = elems;
    out.isWrite = run.isWrite;
    out.backward = run.strideBytes < 0;
    out.ref = run.ref;

    // Charge instructions proportionally to elements consumed, giving
    // the final batch whatever remainder is left.
    Insts charge =
        instsLeft * elems / std::max<std::uint64_t>(elems_left_before, 1);
    if (consumed >= run.count) {
        charge = instsLeft;
        runValid = false;
    }
    instsLeft -= charge;
    out.insts = charge;
    return true;
}

} // namespace cdpc
