/**
 * @file
 * Virtual address space layout for a Program's text and data.
 *
 * Section 5.4 of the paper: SUIF dynamically allocates all data
 * structures, aligning each to a cache-line boundary (eliminating
 * false sharing between structures) and inserting small pads so that
 * structures used together never start at the same on-chip-cache
 * offset. Figure 9 additionally measures bin hopping *without* this
 * alignment, so the layout engine supports a deliberately unaligned
 * mode.
 */

#ifndef CDPC_IR_LAYOUT_H
#define CDPC_IR_LAYOUT_H

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "ir/program.h"

namespace cdpc
{

/** Layout options chosen by the compiler's Aligner pass. */
struct LayoutOptions
{
    /** Base virtual address of the data segment. */
    VAddr dataBase = 0x10000000;
    /**
     * Base virtual address of the text segment. The default is
     * offset from the data base by a non-multiple of any plausible
     * cache span so that page coloring does not trivially alias
     * instruction pages with the first data pages (real link maps
     * are arranged with the same consideration).
     */
    VAddr textBase = 0x00418000;
    /** Align each array's start to a cache-line boundary. */
    bool alignToLine = true;
    std::uint32_t lineBytes = 32;
    /**
     * Extra pad bytes inserted *before* each array (index-aligned
     * with Program::arrays). Computed by the Aligner from group
     * access information; empty means no pads.
     */
    std::vector<std::uint64_t> padBytes;
    /**
     * Deliberately misalign array starts (adds an odd sub-line
     * offset to every array) — models the unoptimized layout of
     * Figure 9's "bin hopping, not aligned" bars.
     */
    bool deliberatelyUnaligned = false;
};

/**
 * Assign base addresses to a program's text segment and arrays.
 * Arrays are placed in declaration order, contiguous up to
 * alignment/padding — the FORTRAN common-block picture the paper's
 * page mapping policies act upon.
 */
void assignAddresses(Program &program, const LayoutOptions &opts);

} // namespace cdpc

#endif // CDPC_IR_LAYOUT_H
