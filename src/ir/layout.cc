#include "ir/layout.h"

#include "common/intmath.h"
#include "common/logging.h"

namespace cdpc
{

void
assignAddresses(Program &program, const LayoutOptions &opts)
{
    fatalIf(!opts.padBytes.empty() &&
                opts.padBytes.size() != program.arrays.size(),
            "padBytes must be empty or match the array count");
    fatalIf(opts.lineBytes == 0, "layout line size must be nonzero");

    program.textBase = opts.textBase;

    VAddr cursor = opts.dataBase;
    for (std::size_t i = 0; i < program.arrays.size(); i++) {
        ArrayDecl &a = program.arrays[i];
        if (!opts.padBytes.empty())
            cursor += opts.padBytes[i];
        if (opts.alignToLine && !opts.deliberatelyUnaligned)
            cursor = roundUp(cursor, opts.lineBytes);
        if (opts.deliberatelyUnaligned) {
            // Give every array an odd sub-line starting offset so
            // that structures straddle line boundaries the way a
            // naive static layout would.
            cursor += a.elemBytes + (i % 3) * a.elemBytes;
        }
        a.base = cursor;
        cursor += a.sizeBytes();
    }
}

} // namespace cdpc
