/**
 * @file
 * IR execution: turning a LoopNest into the per-CPU stream of
 * cache-line-granular references the machine simulator consumes.
 *
 * Two layers:
 *  - RunGenerator enumerates "runs": for each combination of
 *    non-innermost loop indices and each body reference, the
 *    innermost loop walks a strided sequence of addresses.
 *  - RunCursor expands runs into LineAccess records, coalescing the
 *    elements that fall in the same external-cache line into one
 *    record that carries an element count, an instruction charge and
 *    the touched-word mask (which feeds the true/false-sharing
 *    classifier).
 *
 * Line coalescing is what makes simulating the full SPEC95fp-scale
 * reference streams tractable without changing cache behaviour: every
 * element of a unit-stride run beyond the first is an L1 hit whose
 * timing is deterministic.
 */

#ifndef CDPC_IR_EXEC_H
#define CDPC_IR_EXEC_H

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "ir/program.h"

namespace cdpc
{

/** A strided walk of one reference through the innermost loop. */
struct Run
{
    /** Address of the first element. */
    VAddr start = 0;
    /** Byte stride per innermost iteration (may be 0 or negative). */
    std::int64_t strideBytes = 0;
    /** Number of innermost iterations covered. */
    std::uint64_t count = 0;
    bool isWrite = false;
    /** Instructions charged to this run. */
    Insts insts = 0;
    /** Source reference (nullptr for compute-only runs). */
    const AffineRef *ref = nullptr;
    /** Wrap modulus in bytes (0 = linear). */
    std::int64_t wrapModBytes = 0;
    /** Array base the wrap is relative to. */
    VAddr wrapBase = 0;
};

/** One coalesced line-granular access. */
struct LineAccess
{
    /** Address of the first element touched in the line. */
    VAddr va = 0;
    /** 8-byte-word mask of the touched words within the line. */
    std::uint32_t wordMask = 0;
    /** Number of element references this record stands for. */
    std::uint32_t elems = 0;
    /** Instructions executed along with these references. */
    Insts insts = 0;
    bool isWrite = false;
    /** True when the run walks addresses downward (negative stride). */
    bool backward = false;
    /** Source reference (prefetch annotations), may be nullptr. */
    const AffineRef *ref = nullptr;
};

/**
 * Enumerates the runs of one loop nest for one CPU.
 *
 * For Parallel nests the parallel dimension is restricted to the
 * CPU's chunk per the nest's Partition; Sequential and Suppressed
 * nests yield their full iteration space (the simulator routes them
 * to the master CPU only).
 */
class RunGenerator
{
  public:
    RunGenerator(const Program &program, const LoopNest &nest, CpuId cpu,
                 std::uint32_t ncpus);

    /** Produce the next run; @return false when exhausted. */
    bool next(Run &out);

    /** True when this CPU has no iterations at all in this nest. */
    bool empty() const { return done && !started; }

  private:
    const Program &program;
    const LoopNest &nest;

    /** Per-dimension iteration ranges [lo, hi) for this CPU. */
    std::vector<std::uint64_t> lo;
    std::vector<std::uint64_t> hi;
    /** Current indices of the non-innermost dimensions. */
    std::vector<std::uint64_t> idx;
    /** Next body reference to emit for the current indices. */
    std::size_t refCursor = 0;
    bool done = false;
    bool started = false;

    /** Advance the outer-dimension odometer; false when finished. */
    bool bumpOdometer();
    /** Build the run for refs[refCursor] at the current indices. */
    void buildRun(Run &out) const;
    std::size_t innerDim() const { return nest.bounds.size() - 1; }
};

/**
 * Expands the runs of one nest into LineAccess records for one CPU.
 */
class RunCursor
{
  public:
    RunCursor(const Program &program, const LoopNest &nest, CpuId cpu,
              std::uint32_t ncpus, std::uint32_t line_bytes);

    /** Produce the next line access; @return false when exhausted. */
    bool next(LineAccess &out);

  private:
    RunGenerator gen;
    std::uint32_t lineBytes;

    Run run;
    bool runValid = false;
    /** Elements of the current run already consumed. */
    std::uint64_t consumed = 0;
    /** Address of the next element. */
    std::int64_t pos = 0;
    /** Instructions of the current run not yet charged. */
    Insts instsLeft = 0;

    bool refill();
    VAddr elementAddr() const;
};

} // namespace cdpc

#endif // CDPC_IR_EXEC_H
