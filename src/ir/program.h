/**
 * @file
 * A Program: arrays + phases, the IR-level picture of one
 * compiler-parallelized benchmark.
 *
 * The paper's representative-execution-window methodology (Section
 * 3.3) observes that each SPEC95fp benchmark is a short sequential
 * initialization followed by a steady state made of a few phases,
 * each repeated a known number of times (turb3d: four phases
 * occurring 11, 66, 100 and 120 times). We encode exactly that: an
 * init phase (whose first-touch order is what the OS page mapping
 * policies act on) and a list of weighted steady-state phases.
 */

#ifndef CDPC_IR_PROGRAM_H
#define CDPC_IR_PROGRAM_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "ir/array.h"
#include "ir/loop.h"

namespace cdpc
{

/** A phase: a straight-line sequence of loop nests. */
struct Phase
{
    std::string name;
    std::vector<LoopNest> nests;
    /** Times this phase occurs during the steady state. */
    std::uint64_t occurrences = 1;
};

/**
 * A communication pattern the workload author declares explicitly —
 * the pragma/annotation channel for patterns the affine analysis
 * cannot see (e.g. periodic boundary copies done through index
 * arithmetic). Merged into the compiler's summaries.
 */
struct DeclaredComm
{
    std::uint32_t arrayId = 0;
    /** True for wrap-around (rotate) exchange, false for shift. */
    bool rotate = true;
    std::uint32_t boundaryUnits = 1;
};

/** One benchmark program in IR form. */
struct Program
{
    std::string name;

    std::vector<ArrayDecl> arrays;

    /** Author-declared communication patterns (see DeclaredComm). */
    std::vector<DeclaredComm> declaredComms;

    /**
     * Sequential initialization executed once by the master CPU.
     * Its reference order is the first-touch order the page mapping
     * policies see, so it is semantically load-bearing.
     */
    Phase init;

    /** The steady-state phases (each simulated occurrences times). */
    std::vector<Phase> steady;

    /**
     * Instruction-stream footprint in bytes. When modelIfetch is
     * set the simulator generates instruction fetches cycling
     * through a text segment of this size (fpppp's bottleneck).
     */
    std::uint64_t textBytes = 8 * 1024;
    bool modelIfetch = false;
    /** Text segment base; assigned by VirtualLayout. */
    VAddr textBase = 0;

    /** Sum of all array sizes (Table 1's data-set size). */
    std::uint64_t
    dataSetBytes() const
    {
        std::uint64_t total = 0;
        for (const ArrayDecl &a : arrays)
            total += a.sizeBytes();
        return total;
    }

    /** Look up an array id by name; fatal() when absent. */
    std::uint32_t arrayId(const std::string &name) const;

    /** Validate internal consistency (ref ids, term dims, bounds). */
    void validate() const;
};

} // namespace cdpc

#endif // CDPC_IR_PROGRAM_H
