/**
 * @file
 * Array declarations for the mini loop-nest IR.
 *
 * The SUIF-parallelized SPEC95fp programs are FORTRAN numeric codes:
 * their data is a set of statically known multi-dimensional arrays.
 * Our IR keeps exactly the information the CDPC pipeline needs about
 * each array: element size, dimensions, the base virtual address
 * assigned by layout, and whether the compiler could analyze every
 * access to it (arrays with unanalyzable accesses are excluded from
 * CDPC, the su2cor situation in Section 6.1).
 */

#ifndef CDPC_IR_ARRAY_H
#define CDPC_IR_ARRAY_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/types.h"

namespace cdpc
{

/** One statically declared array. */
struct ArrayDecl
{
    std::string name;
    /** Bytes per element (8 for double-precision FORTRAN data). */
    std::uint32_t elemBytes = 8;
    /** Extents, outermost first; the last dimension is contiguous. */
    std::vector<std::uint64_t> dims;
    /** Base virtual address; assigned by VirtualLayout. */
    VAddr base = 0;
    /**
     * False when some access to this array could not be analyzed by
     * the compiler; such arrays get no partition summary and fall
     * back to the OS's native mapping policy.
     */
    bool summarizable = true;

    std::uint64_t
    elements() const
    {
        std::uint64_t n = 1;
        for (std::uint64_t d : dims)
            n *= d;
        return n;
    }

    std::uint64_t sizeBytes() const { return elements() * elemBytes; }

    /** Row-major stride, in elements, of dimension @p dim. */
    std::uint64_t
    strideElems(std::size_t dim) const
    {
        panicIfNot(dim < dims.size(), "stride of nonexistent dim");
        std::uint64_t s = 1;
        for (std::size_t d = dims.size() - 1; d > dim; d--)
            s *= dims[d];
        return s;
    }

    VAddr endAddr() const { return base + sizeBytes(); }
};

} // namespace cdpc

#endif // CDPC_IR_ARRAY_H
