/**
 * @file
 * Loop nests and affine array references — the executable core of
 * the mini IR.
 *
 * A LoopNest is a rectangular nest of counted loops whose body makes
 * a fixed set of affine references each innermost iteration, plus a
 * fixed amount of non-memory computation. One dimension may be
 * marked parallel; the Parallelizer attaches the static schedule
 * (even/blocked, forward/reverse — the partition vocabulary of the
 * paper's Section 5.1).
 */

#ifndef CDPC_IR_LOOP_H
#define CDPC_IR_LOOP_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace cdpc
{

/** How a parallel dimension's iterations are divided among CPUs. */
enum class PartitionPolicy : unsigned char
{
    /** Contiguous chunks whose sizes differ by at most one. */
    Even,
    /** ceil(N/p) iterations each; the last CPU may get fewer. */
    Blocked,
};

/** Order in which chunks are assigned to CPUs. */
enum class PartitionDir : unsigned char
{
    Forward, ///< chunk 0 -> CPU 0
    Reverse, ///< chunk 0 -> CPU p-1
};

/** Static schedule of a parallel dimension. */
struct Partition
{
    PartitionPolicy policy = PartitionPolicy::Even;
    PartitionDir dir = PartitionDir::Forward;

    /**
     * Compute CPU @p cpu's contiguous iteration range [lo, hi) for a
     * dimension of @p extent iterations among @p ncpus CPUs.
     */
    void range(std::uint64_t extent, std::uint32_t ncpus, CpuId cpu,
               std::uint64_t &lo, std::uint64_t &hi) const;
};

/** One linear term of an affine index expression. */
struct AffineTerm
{
    /** Loop dimension the term reads (0 = outermost). */
    std::uint32_t loopDim = 0;
    /** Coefficient, in array *elements*. */
    std::int64_t coeffElems = 1;
};

/**
 * An affine reference: element index = constElems + sum of
 * coeff * iv over terms. Executed once per innermost iteration.
 */
struct AffineRef
{
    std::uint32_t arrayId = 0;
    std::int64_t constElems = 0;
    std::vector<AffineTerm> terms;
    bool isWrite = false;
    /**
     * When nonzero, the flattened index wraps modulo this element
     * count — used to model non-contiguous (unanalyzable) access
     * patterns like su2cor's; such refs defeat the compiler's
     * partition summaries.
     */
    std::int64_t wrapModElems = 0;
    /**
     * Compiler-inserted prefetch distance, in external-cache lines
     * ahead of the demand reference; 0 means not prefetched. Set by
     * the Prefetcher pass.
     */
    std::uint32_t prefetchDistLines = 0;
    /**
     * True when software pipelining failed (tiled nests): the
     * prefetch is emitted immediately before the demand reference of
     * the same line, so it covers essentially none of the latency —
     * the paper's "not scheduled early enough" (Section 6.2).
     */
    bool prefetchLate = false;
};

/** Parallelization status of a nest (Figure 2's overhead taxonomy). */
enum class NestKind : unsigned char
{
    /** Runs distributed across the CPUs. */
    Parallel,
    /** Could not be parallelized; master runs it, slaves spin. */
    Sequential,
    /**
     * Parallelizable but suppressed by the compiler because it is
     * too fine-grained to pay for synchronization (apsi, wave5).
     */
    Suppressed,
};

/** A rectangular counted loop nest. */
struct LoopNest
{
    std::string label;
    /** Iteration counts per dimension, outermost first. */
    std::vector<std::uint64_t> bounds;
    /** Which dimension is distributed; meaningful for Parallel. */
    std::uint32_t parallelDim = 0;
    NestKind kind = NestKind::Parallel;
    Partition partition;
    /** Non-memory instructions per innermost iteration. */
    std::uint32_t instsPerIter = 8;
    /**
     * True when a transformation (e.g. the loop tiling applu gets
     * during parallelization) prevents software-pipelining the
     * prefetches, so they cannot be scheduled early enough
     * (Section 6.2).
     */
    bool prefetchPipelineInhibited = false;
    std::vector<AffineRef> refs;

    std::uint64_t
    totalIters() const
    {
        std::uint64_t n = 1;
        for (std::uint64_t b : bounds)
            n *= b;
        return n;
    }
};

} // namespace cdpc

#endif // CDPC_IR_LOOP_H
