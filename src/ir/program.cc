#include "ir/program.h"

#include "common/logging.h"

namespace cdpc
{

std::uint32_t
Program::arrayId(const std::string &array_name) const
{
    for (std::size_t i = 0; i < arrays.size(); i++) {
        if (arrays[i].name == array_name)
            return static_cast<std::uint32_t>(i);
    }
    fatal("program ", name, " has no array named ", array_name);
}

namespace
{

void
validateNest(const Program &p, const Phase &phase, const LoopNest &nest)
{
    fatalIf(nest.bounds.empty(), "nest ", nest.label, " in phase ",
            phase.name, " has no loop bounds");
    for (std::uint64_t b : nest.bounds) {
        fatalIf(b == 0, "nest ", nest.label, " has a zero loop bound");
    }
    fatalIf(nest.kind == NestKind::Parallel &&
                nest.parallelDim >= nest.bounds.size(),
            "nest ", nest.label, " parallel dim out of range");
    for (const AffineRef &r : nest.refs) {
        fatalIf(r.arrayId >= p.arrays.size(), "nest ", nest.label,
                " references nonexistent array id ", r.arrayId);
        for (const AffineTerm &t : r.terms) {
            fatalIf(t.loopDim >= nest.bounds.size(), "nest ",
                    nest.label, " term reads nonexistent loop dim ",
                    t.loopDim);
        }
    }
}

} // namespace

void
Program::validate() const
{
    fatalIf(arrays.empty(), "program ", name, " declares no arrays");
    fatalIf(steady.empty(), "program ", name, " has no steady-state "
            "phases — nothing to measure");
    for (const LoopNest &nest : init.nests)
        validateNest(*this, init, nest);
    for (const Phase &phase : steady) {
        fatalIf(phase.occurrences == 0, "phase ", phase.name,
                " occurs zero times");
        for (const LoopNest &nest : phase.nests)
            validateNest(*this, phase, nest);
    }
}

} // namespace cdpc
