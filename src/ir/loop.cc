#include "ir/loop.h"

#include "common/intmath.h"
#include "common/logging.h"

namespace cdpc
{

void
Partition::range(std::uint64_t extent, std::uint32_t ncpus, CpuId cpu,
                 std::uint64_t &lo, std::uint64_t &hi) const
{
    panicIfNot(ncpus > 0, "partition over zero CPUs");
    panicIfNot(cpu < ncpus, "partition for out-of-range CPU");

    // Reverse direction assigns chunk 0 to the last CPU.
    CpuId chunk = dir == PartitionDir::Forward
                      ? cpu
                      : static_cast<CpuId>(ncpus - 1 - cpu);

    if (policy == PartitionPolicy::Blocked) {
        std::uint64_t sz = divCeil(extent, ncpus);
        lo = std::min<std::uint64_t>(chunk * sz, extent);
        hi = std::min<std::uint64_t>(lo + sz, extent);
    } else {
        // Even: sizes differ by at most one; the first (extent % p)
        // chunks get one extra iteration.
        std::uint64_t base = extent / ncpus;
        std::uint64_t extra = extent % ncpus;
        if (chunk < extra) {
            lo = chunk * (base + 1);
            hi = lo + base + 1;
        } else {
            lo = extra * (base + 1) + (chunk - extra) * base;
            hi = lo + base;
        }
    }
}

} // namespace cdpc
