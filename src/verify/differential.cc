#include "verify/differential.h"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <vector>

#include "obs/metrics.h"

namespace cdpc::verify
{

namespace
{

std::string
hex(std::uint64_t v)
{
    std::ostringstream os;
    os << "0x" << std::hex << v;
    return os.str();
}

const char *
kindName(AccessKind k)
{
    switch (k) {
      case AccessKind::Load:
        return "load";
      case AccessKind::Store:
        return "store";
      case AccessKind::Ifetch:
        return "ifetch";
    }
    return "?";
}

std::string
outcomeLine(Cycles stall, Cycles kernel, bool l1, bool l2, bool tlbm,
            bool fault, bool l2m, MissKind kind, PAddr pa)
{
    std::ostringstream os;
    os << "stall=" << stall << " kernel=" << kernel << " l1Hit=" << l1
       << " l2Hit=" << l2 << " tlbMiss=" << tlbm << " pageFault="
       << fault << " l2Miss=" << l2m << " missKind="
       << missKindName(kind) << " pa=" << hex(pa);
    return os.str();
}

} // namespace

DifferentialVerifier::DifferentialVerifier(const MachineConfig &config,
                                           const MemorySystem &mem,
                                           const VirtualMemory &vm,
                                           std::uint64_t deep_every)
    : mem(mem), vm(vm), refIdx(config.l2, config.pageBytes),
      ref(config, vm), deepEvery(deep_every), untilDeep(deep_every)
{}

void
DifferentialVerifier::diverge(const std::string &what) const
{
    CDPC_METRIC_COUNT("verify.divergences", 1);
    throw DivergenceError("divergence: " + what);
}

void
DifferentialVerifier::onAccess(CpuId cpu, const MemAccess &acc,
                               Cycles now, const AccessOutcome &out,
                               PAddr pa)
{
    RefOutcome r = ref.access(cpu, acc, now, pa);
    stats_.refsChecked++;
    CDPC_METRIC_COUNT("verify.refs", 1);

    PageNum vpn = acc.va / vm.pageBytes();
    auto repro = [&](const std::string &field) {
        std::ostringstream os;
        os << field << " mismatch at reference #" << stats_.refsChecked
           << ": cpu=" << cpu << " " << kindName(acc.kind) << " va="
           << hex(acc.va) << " vpn=" << vpn << " now=" << now
           << "\n  optimized: "
           << outcomeLine(out.stall, out.kernel, out.l1Hit, out.l2Hit,
                          out.tlbMiss, out.pageFault, out.l2Miss,
                          out.missKind, pa)
           << "\n  reference: "
           << outcomeLine(r.stall, r.kernel, r.l1Hit, r.l2Hit,
                          r.tlbMiss, r.pageFault, r.l2Miss, r.missKind,
                          r.pa);
        diverge(os.str());
    };

    if (r.pa != pa)
        repro("physical address");
    if (r.pageFault != out.pageFault)
        repro("pageFault");
    if (r.tlbMiss != out.tlbMiss)
        repro("tlbMiss");
    if (r.kernel != out.kernel)
        repro("kernel cycles");
    if (r.l1Hit != out.l1Hit)
        repro("l1Hit");
    if (r.l2Hit != out.l2Hit)
        repro("l2Hit");
    if (r.l2Miss != out.l2Miss)
        repro("l2Miss");
    if (r.missKind != out.missKind)
        repro("missKind");
    if (r.stall != out.stall)
        repro("stall cycles");

    // Color relation: the physical page's cache color — derived with
    // the reference index-function implementation — must match what
    // the VM layer reports for the virtual page.
    if (refIdx.pageColorRef(pa / vm.pageBytes()) != vm.colorOf(acc.va))
        repro("page color");

    // MESI cross-check of the line just touched. Inclusion puts every
    // L1-resident line in the external cache, and a missing line was
    // just inserted, so both models must hold it (the reference
    // reports absence as Invalid in RefOutcome::l2State).
    Addr line = pa / mem.lineBytes();
    Addr idx = line * mem.lineBytes();
    const CacheLine *ol = mem.l2Cache(cpu).probe(idx, line);
    if (!ol || r.l2State == Mesi::Invalid || ol->state != r.l2State) {
        std::ostringstream os;
        os << "MESI state of line " << hex(line)
           << " after reference #" << stats_.refsChecked << ": cpu="
           << cpu << " va=" << hex(acc.va) << " vpn=" << vpn
           << " optimized="
           << (ol ? mesiName(ol->state) : "<absent>") << " reference="
           << (r.l2State != Mesi::Invalid ? mesiName(r.l2State)
                                          : "<absent>");
        diverge(os.str());
    }

    if (deepEvery && --untilDeep == 0) {
        untilDeep = deepEvery;
        deepCompare();
    }
}

void
DifferentialVerifier::onPrefetch(CpuId cpu, VAddr va, Cycles now,
                                 Cycles stall)
{
    Cycles predicted = ref.prefetch(cpu, va, now);
    stats_.prefetchesChecked++;
    if (predicted != stall) {
        std::ostringstream os;
        os << "prefetch stall after reference #" << stats_.refsChecked
           << ": cpu=" << cpu << " va=" << hex(va) << " now=" << now
           << " optimized=" << stall << " reference=" << predicted;
        diverge(os.str());
    }
}

void
DifferentialVerifier::onPurge(VAddr va, PAddr pa)
{
    PAddr predicted = ref.purgePage(va);
    stats_.purgesChecked++;
    if (predicted != pa) {
        std::ostringstream os;
        os << "purge translation after reference #"
           << stats_.refsChecked << ": va=" << hex(va) << " optimized="
           << hex(pa) << " reference=" << hex(predicted);
        diverge(os.str());
    }
}

void
DifferentialVerifier::compareCaches(CpuId cpu, const char *which,
                                    const Cache &opt,
                                    const RefCache &model,
                                    std::uint64_t phys_line_bytes) const
{
    // A line address appears at most once per cache, so the contents
    // are equal iff every optimized line is found in the model with
    // the same state and dirty bit, and the totals match. For
    // physically indexed caches the model can be probed directly —
    // no snapshot, no sort.
    if (phys_line_bytes) {
        std::size_t opt_count = 0;
        bool mismatch = false;
        opt.forEachValid([&](const CacheLine &l) {
            opt_count++;
            const RefLine *rl =
                model.probe(l.lineAddr * phys_line_bytes, l.lineAddr);
            if (!rl || rl->state != l.state || rl->dirty != l.dirty)
                mismatch = true;
        });
        if (!mismatch && opt_count == model.validCount())
            return;
    }

    // Sorted-snapshot comparison: the only option for virtually
    // indexed caches, and the diagnostic path for probe mismatches.
    using Triple = std::tuple<Addr, Mesi, bool>;
    std::vector<Triple> a;
    opt.forEachValid([&](const CacheLine &l) {
        a.emplace_back(l.lineAddr, l.state, l.dirty);
    });
    std::sort(a.begin(), a.end());
    std::size_t matched = 0;
    bool missing = false;
    model.forEachValid([&](const RefLine &l) {
        if (std::binary_search(a.begin(), a.end(),
                               Triple{l.line, l.state, l.dirty}))
            matched++;
        else
            missing = true;
    });
    if (!missing && matched == a.size())
        return;

    std::vector<Triple> b;
    model.forEachValid([&](const RefLine &l) {
        b.emplace_back(l.line, l.state, l.dirty);
    });
    std::sort(b.begin(), b.end());

    std::ostringstream os;
    os << "deep compare: " << which << " contents on cpu " << cpu
       << " after reference #" << stats_.refsChecked << " ("
       << a.size() << " vs " << b.size() << " valid lines)";
    for (const Triple &t : a) {
        if (!std::binary_search(b.begin(), b.end(), t)) {
            os << "\n  only optimized: line=" << hex(std::get<0>(t))
               << " state=" << mesiName(std::get<1>(t)) << " dirty="
               << std::get<2>(t);
        }
    }
    for (const Triple &t : b) {
        if (!std::binary_search(a.begin(), a.end(), t)) {
            os << "\n  only reference: line=" << hex(std::get<0>(t))
               << " state=" << mesiName(std::get<1>(t)) << " dirty="
               << std::get<2>(t);
        }
    }
    diverge(os.str());
}

void
DifferentialVerifier::deepCompare() const
{
    stats_.deepCompares++;
    CDPC_METRIC_COUNT("verify.deepCompares", 1);

    for (std::uint32_t q = 0; q < ref.numCpus(); q++) {
        compareCaches(q, "L1D", mem.l1dCache(q), ref.l1d(q), 0);
        compareCaches(q, "L1I", mem.l1iCache(q), ref.l1i(q), 0);
        compareCaches(q, "L2", mem.l2Cache(q), ref.l2(q),
                      mem.lineBytes());

        const Tlb &tlb = mem.tlb(q);
        if (tlb.size() != ref.tlbOf(q).size()) {
            diverge(detail::concat(
                "deep compare: TLB size on cpu ", q, ": optimized=",
                tlb.size(), " reference=", ref.tlbOf(q).size()));
        }
        ref.tlbOf(q).forEach([&](std::uint64_t vpn) {
            if (!tlb.contains(vpn)) {
                diverge(detail::concat(
                    "deep compare: vpn ", vpn,
                    " resident in reference TLB only, cpu ", q));
            }
        });

        const LruShadow &shadow = mem.missShadow(q);
        if (shadow.size() != ref.shadowOf(q).size()) {
            diverge(detail::concat(
                "deep compare: miss-shadow size on cpu ", q,
                ": optimized=", shadow.size(), " reference=",
                ref.shadowOf(q).size()));
        }
        ref.shadowOf(q).forEach([&](std::uint64_t line) {
            if (!shadow.contains(line)) {
                diverge(detail::concat(
                    "deep compare: line ", line,
                    " resident in reference miss shadow only, cpu ",
                    q));
            }
        });
    }

    if (mem.busFreeAt() != ref.busFreeAt()) {
        diverge(detail::concat(
            "deep compare: bus clock: optimized free at ",
            mem.busFreeAt(), ", reference free at ", ref.busFreeAt()));
    }
}

} // namespace cdpc::verify
