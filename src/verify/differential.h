/**
 * @file
 * DifferentialVerifier: runs the reference memory system in lockstep
 * with the optimized hierarchy via the MemObserver hooks and throws a
 * DivergenceError with a minimal repro on the first disagreement
 * (DESIGN.md §11).
 *
 * Per-event checks compare the complete AccessOutcome (stall cycles,
 * kernel cycles, hit levels, miss classification), the physical
 * translation, the page color relation, and the MESI state of the
 * accessed external-cache line. Every --verify-every N events a deep
 * structural comparison additionally walks all caches, TLBs, miss
 * shadows and the bus clock of both models.
 */

#ifndef CDPC_VERIFY_DIFFERENTIAL_H
#define CDPC_VERIFY_DIFFERENTIAL_H

#include <cstdint>

#include "common/logging.h"
#include "mem/memsystem.h"
#include "verify/ref_memsystem.h"
#include "vm/virtual_memory.h"

namespace cdpc::verify
{

/**
 * The optimized path and the reference model disagreed. Derived from
 * PanicError so the batch runner treats a divergence like any other
 * simulator-invariant violation (permanent quarantine, never retried).
 */
class DivergenceError : public PanicError
{
  public:
    explicit DivergenceError(const std::string &what)
        : PanicError(what)
    {}
};

/** Lockstep-verification progress counters. */
struct VerifyStats
{
    std::uint64_t refsChecked = 0;
    std::uint64_t prefetchesChecked = 0;
    std::uint64_t purgesChecked = 0;
    std::uint64_t deepCompares = 0;
};

/** MemObserver that cross-checks every event against RefMemorySystem. */
class DifferentialVerifier : public MemObserver
{
  public:
    /**
     * @param config machine parameters (same as the system under test)
     * @param mem the optimized hierarchy under test (read only)
     * @param vm the shared address space
     * @param deep_every run a deep structural comparison every this
     *        many demand references (0 = per-event checks only)
     */
    DifferentialVerifier(const MachineConfig &config,
                         const MemorySystem &mem,
                         const VirtualMemory &vm,
                         std::uint64_t deep_every);

    void onAccess(CpuId cpu, const MemAccess &acc, Cycles now,
                  const AccessOutcome &out, PAddr pa) override;
    void onPrefetch(CpuId cpu, VAddr va, Cycles now,
                    Cycles stall) override;
    void onPurge(VAddr va, PAddr pa) override;

    /**
     * Compare the full structural state of both models: every valid
     * line (address, MESI state, dirty bit) of every cache, TLB and
     * miss-shadow contents, and the bus clock. Throws DivergenceError
     * on the first mismatch.
     */
    void deepCompare() const;

    const VerifyStats &stats() const { return stats_; }
    RefMemorySystem &model() { return ref; }

  private:
    [[noreturn]] void diverge(const std::string &what) const;
    /**
     * Structural comparison of one cache pair. @p phys_line_bytes is
     * nonzero for physically indexed caches (the L2), enabling a
     * probe-based membership check that skips the sorted-snapshot
     * path; virtually indexed L1s (set chosen by VA, unknowable from
     * the line address) pass 0 and always take the sorted path.
     */
    void compareCaches(CpuId cpu, const char *which, const Cache &opt,
                       const RefCache &model,
                       std::uint64_t phys_line_bytes) const;

    const MemorySystem &mem;
    const VirtualMemory &vm;
    /** Reference-side page→color mapping (division/bit-loop impl). */
    IndexFunction refIdx;
    RefMemorySystem ref;
    std::uint64_t deepEvery;
    std::uint64_t untilDeep;
    /** Mutable so the externally callable deepCompare() counts too. */
    mutable VerifyStats stats_;
};

} // namespace cdpc::verify

#endif // CDPC_VERIFY_DIFFERENTIAL_H
