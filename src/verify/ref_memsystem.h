/**
 * @file
 * RefMemorySystem: a deliberately simple reference model of the
 * multiprocessor memory hierarchy, for differential verification of
 * the optimized per-reference fast path (DESIGN.md §11).
 *
 * Everything here is built from the most obvious data structure that
 * can express the semantics — std::list + std::unordered_map LRUs,
 * per-set lists of MESI lines, a plain unordered_map shadow page
 * table — and all line/page/set math is done with division and
 * modulo instead of shifts and masks, so the reference shares no
 * clever machinery (and therefore no correlated bugs) with
 * mem/memsystem.cc: no intrusive slot pools, no flat hashing, no
 * translation micro-cache, no generation short-circuits.
 *
 * The model is driven in lockstep by DifferentialVerifier through
 * MemorySystem's MemObserver hooks. It never consults the optimized
 * hierarchy's state; the only inputs it takes from the real run are
 * the observed physical address of each event, used to (a) adopt
 * allocation decisions the OS layer makes at fault time (page
 * placement is policy, not memory-hierarchy behaviour) and (b) be
 * cross-checked against the model's own shadow page table.
 */

#ifndef CDPC_VERIFY_REF_MEMSYSTEM_H
#define CDPC_VERIFY_REF_MEMSYSTEM_H

#include <cstdint>
#include <iterator>
#include <list>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.h"
#include "machine/config.h"
#include "machine/index_function.h"
#include "mem/memsystem.h"
#include "mem/mesi.h"
#include "mem/miss_classify.h"
#include "vm/virtual_memory.h"

namespace cdpc::verify
{

/** What the reference model predicts for one demand reference. */
struct RefOutcome
{
    Cycles stall = 0;
    Cycles kernel = 0;
    bool l1Hit = false;
    bool l2Hit = false;
    bool tlbMiss = false;
    bool pageFault = false;
    MissKind missKind = MissKind::Cold;
    bool l2Miss = false;
    /** The model's own translation of the reference. */
    PAddr pa = 0;
    /**
     * Post-access MESI state of the touched line in this CPU's L2
     * (Invalid = absent, which inclusion forbids after a demand
     * access). Lets the verifier cross-check coherence state without
     * re-probing the model.
     */
    Mesi l2State = Mesi::Invalid;
};

/** Textbook LRU set: std::list (front = MRU) + iterator map. */
class RefLru
{
  public:
    explicit RefLru(std::uint64_t capacity) : capacity_(capacity) {}

    /** Touch @p key; @return true on hit. Misses evict true-LRU. */
    bool
    accessAndUpdate(std::uint64_t key)
    {
        auto it = pos.find(key);
        if (it != pos.end()) {
            lru.splice(lru.begin(), lru, it->second);
            return true;
        }
        if (lru.size() >= capacity_) {
            // Recycle the LRU node instead of freeing and
            // reallocating: splice it to the front and rekey it.
            // Same list + map semantics, no per-miss allocation.
            auto node = pos.extract(lru.back());
            lru.splice(lru.begin(), lru, std::prev(lru.end()));
            lru.front() = key;
            node.key() = key;
            node.mapped() = lru.begin();
            pos.insert(std::move(node));
            return false;
        }
        lru.push_front(key);
        pos[key] = lru.begin();
        return false;
    }

    bool contains(std::uint64_t key) const { return pos.count(key) > 0; }

    bool
    invalidate(std::uint64_t key)
    {
        auto it = pos.find(key);
        if (it == pos.end())
            return false;
        lru.erase(it->second);
        pos.erase(it);
        return true;
    }

    void
    flush()
    {
        lru.clear();
        pos.clear();
    }

    std::size_t size() const { return pos.size(); }

    /** Visit every resident key (order unspecified). */
    template <typename F>
    void
    forEach(F &&fn) const
    {
        for (std::uint64_t k : lru)
            fn(k);
    }

  private:
    std::uint64_t capacity_;
    std::list<std::uint64_t> lru;
    std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator>
        pos;
};

/** One valid line of the reference cache. */
struct RefLine
{
    Addr line = 0;
    Mesi state = Mesi::Invalid;
    bool dirty = false;
};

/**
 * Set-associative cache as an array of sets, each a list of valid
 * lines in MRU order. Equivalent to the optimized Cache's monotone
 * lastUse-clock LRU: the clock is strictly increasing so there are
 * never LRU ties, and insert-into-an-invalid-way corresponds exactly
 * to a list shorter than the associativity.
 */
class RefCache
{
  public:
    /** @param page_bytes page size for color-aware index kinds; 0
     *  for the virtually indexed L1s (set indexing only). */
    explicit RefCache(const CacheConfig &config,
                      std::uint64_t page_bytes = 0)
        : cfg(config), idx(config, page_bytes), sets(config.numSets())
    {}

    /** Look up and touch LRU; @return the line or nullptr. */
    RefLine *access(Addr index_addr, Addr line);

    /** Look up without touching LRU. */
    RefLine *probe(Addr index_addr, Addr line);
    const RefLine *probe(Addr index_addr, Addr line) const;

    /**
     * Insert after a miss. When the set is full the LRU line is
     * copied into @p victim and @p *evicted set; otherwise *evicted
     * is false. @return the inserted line.
     */
    RefLine *insert(Addr index_addr, Addr line, Mesi state,
                    RefLine *victim, bool *evicted);

    /** Remove a line if present; @return true when it was. */
    bool invalidate(Addr index_addr, Addr line);

    /** Visit every valid line. */
    template <typename F>
    void
    forEachValid(F &&fn) const
    {
        for (const std::list<RefLine> &lines : sets) {
            for (const RefLine &l : lines)
                fn(l);
        }
    }

    std::size_t
    validCount() const
    {
        std::size_t n = 0;
        for (const std::list<RefLine> &lines : sets)
            n += lines.size();
        return n;
    }

  private:
    /** Division/modulo set selection via the reference index-function
     *  implementation — no shifts, no masks. */
    std::uint64_t
    setOf(Addr index_addr) const
    {
        return idx.setOfRef(index_addr);
    }

    CacheConfig cfg;
    IndexFunction idx;
    std::vector<std::list<RefLine>> sets;
};

/** Straight-line replica of the split-transaction bus timing. */
struct RefBus
{
    Cycles dataCycles = 0;
    Cycles wbCycles = 0;
    Cycles upgradeCycles = 0;
    Cycles nextFree = 0;

    Cycles
    acquire(BusKind kind, Cycles now)
    {
        Cycles start = now > nextFree ? now : nextFree;
        Cycles occ = kind == BusKind::Data        ? dataCycles
                     : kind == BusKind::Writeback ? wbCycles
                                                  : upgradeCycles;
        nextFree = start + occ;
        return start;
    }

    Cycles freeAt() const { return nextFree; }
};

/** The reference hierarchy, driven in lockstep by the verifier. */
class RefMemorySystem
{
  public:
    /**
     * @param config machine parameters (same as the optimized system)
     * @param vm the real address space; read only to resynchronize
     *        the shadow page table after remap/steal generations
     */
    RefMemorySystem(const MachineConfig &config,
                    const VirtualMemory &vm);

    /**
     * Replay one demand reference. @p observed_pa is the physical
     * address the optimized path translated to; the model uses it
     * only to adopt fault-time placement (see file comment) — the
     * returned RefOutcome::pa is the model's own translation and may
     * legitimately be compared against @p observed_pa.
     */
    RefOutcome access(CpuId cpu, const MemAccess &acc, Cycles now,
                      PAddr observed_pa);

    /** Replay one software prefetch; @return predicted stall. */
    Cycles prefetch(CpuId cpu, VAddr va, Cycles now);

    /**
     * Replay a page purge. @return the model's own translation of
     * @p va (page base + offset) for cross-checking.
     */
    PAddr purgePage(VAddr va);

    // --- deep-comparison accessors ---------------------------------
    const RefCache &l1d(CpuId cpu) const { return ports[cpu].l1d; }
    const RefCache &l1i(CpuId cpu) const { return ports[cpu].l1i; }
    const RefCache &l2(CpuId cpu) const { return ports[cpu].l2; }
    const RefLru &tlbOf(CpuId cpu) const { return ports[cpu].tlb; }
    const RefLru &shadowOf(CpuId cpu) const
    {
        return ports[cpu].shadow;
    }
    Cycles busFreeAt() const { return bus.freeAt(); }
    std::uint32_t numCpus() const { return cfg.numCpus; }

  private:
    struct RefL2Result
    {
        Cycles latency = 0;
        bool hit = false;
        bool miss = false;
        bool writable = false;
        MissKind kind = MissKind::Cold;
        /** Post-access state of the touched L2 line. */
        Mesi state = Mesi::Invalid;
    };

    struct RefPort
    {
        RefPort(const MachineConfig &c)
            : l1d(c.l1d), l1i(c.l1i), l2(c.l2, c.pageBytes),
              tlb(c.tlbEntries), shadow(c.l2.numLines())
        {}

        RefCache l1d;
        RefCache l1i;
        RefCache l2;
        RefLru tlb;
        RefLru shadow;
        std::unordered_set<Addr> cold;
        /** phys line -> virtual index addr of its L1 residence. */
        std::unordered_map<Addr, VAddr> l1Residence;
        /** phys line -> completion time of an issued prefetch. */
        std::unordered_map<Addr, Cycles> prefetches;
    };

    struct RefSharing
    {
        std::uint32_t invalidatedMask = 0;
        std::array<std::uint32_t, kMaxCpus> writtenSince{};
    };

    /**
     * Rebuild the shadow page table when the VM generation moved.
     * @return true when a rebuild happened (iterators invalidated).
     */
    bool resyncIfStale();

    RefL2Result l2Access(CpuId cpu, Addr line, bool is_write,
                         std::uint32_t word_mask, Cycles now,
                         bool is_prefetch);
    void invalidateOthers(CpuId writer, Addr line,
                          std::uint32_t word_mask);
    void recordWrite(CpuId writer, Addr line, std::uint32_t word_mask);
    void backInvalidateL1(CpuId cpu, Addr line);
    MissKind classifyMiss(CpuId cpu, Addr line, std::uint32_t word_mask,
                          bool seen_before, bool shadow_hit);

    Addr indexOf(Addr line) const { return line * cfg.l2.lineBytes; }

    MachineConfig cfg;
    const VirtualMemory &vm;
    RefBus bus;
    std::vector<RefPort> ports;
    std::unordered_map<Addr, RefSharing> sharing;
    /** Shadow page table: vpn -> physical page base. */
    std::unordered_map<PageNum, PAddr> mirror;
    /** VM generation the mirror was last synchronized against. */
    std::uint64_t mirrorGen = 0;
};

} // namespace cdpc::verify

#endif // CDPC_VERIFY_REF_MEMSYSTEM_H
