#include "verify/ref_memsystem.h"

#include "common/logging.h"

namespace cdpc::verify
{

// --------------------------------------------------------------------
// RefCache

RefLine *
RefCache::access(Addr index_addr, Addr line)
{
    std::list<RefLine> &lines = sets[setOf(index_addr)];
    for (auto li = lines.begin(); li != lines.end(); ++li) {
        if (li->line == line) {
            lines.splice(lines.begin(), lines, li);
            return &lines.front();
        }
    }
    return nullptr;
}

RefLine *
RefCache::probe(Addr index_addr, Addr line)
{
    for (RefLine &l : sets[setOf(index_addr)]) {
        if (l.line == line)
            return &l;
    }
    return nullptr;
}

const RefLine *
RefCache::probe(Addr index_addr, Addr line) const
{
    for (const RefLine &l : sets[setOf(index_addr)]) {
        if (l.line == line)
            return &l;
    }
    return nullptr;
}

RefLine *
RefCache::insert(Addr index_addr, Addr line, Mesi state,
                 RefLine *victim, bool *evicted)
{
    std::list<RefLine> &lines = sets[setOf(index_addr)];
    for (const RefLine &l : lines) {
        panicIfNot(l.line != line,
                   "ref cache: inserting an already-present line ",
                   line);
    }
    *evicted = false;
    if (lines.size() >= cfg.assoc) {
        *victim = lines.back();
        *evicted = true;
        // Recycle the evicted node: splice it to the MRU slot and
        // overwrite. Same list semantics, no per-miss allocation.
        lines.splice(lines.begin(), lines, std::prev(lines.end()));
        lines.front() = RefLine{line, state, false};
        return &lines.front();
    }
    lines.push_front(RefLine{line, state, false});
    return &lines.front();
}

bool
RefCache::invalidate(Addr index_addr, Addr line)
{
    std::list<RefLine> &lines = sets[setOf(index_addr)];
    for (auto li = lines.begin(); li != lines.end(); ++li) {
        if (li->line == line) {
            lines.erase(li);
            return true;
        }
    }
    return false;
}

// --------------------------------------------------------------------
// RefMemorySystem

RefMemorySystem::RefMemorySystem(const MachineConfig &config,
                                 const VirtualMemory &vm)
    : cfg(config), vm(vm)
{
    cfg.validate();
    fatalIf(cfg.numCpus > kMaxCpus, "at most ", kMaxCpus,
            " CPUs supported");
    bus.dataCycles = cfg.busDataCycles;
    bus.wbCycles = cfg.busWritebackCycles;
    bus.upgradeCycles = cfg.busUpgradeCycles;
    ports.reserve(cfg.numCpus);
    for (std::uint32_t i = 0; i < cfg.numCpus; i++)
        ports.emplace_back(cfg);
    // Adopt mappings that predate the verifier (touch-order
    // pre-faulting); later faults are learned from observations.
    mirrorGen = vm.generation();
    vm.forEachMapping([&](PageNum vpn, PageNum ppn) {
        mirror[vpn] = ppn * cfg.pageBytes;
    });
}

bool
RefMemorySystem::resyncIfStale()
{
    if (vm.generation() == mirrorGen)
        return false;
    mirror.clear();
    vm.forEachMapping([&](PageNum vpn, PageNum ppn) {
        mirror[vpn] = ppn * cfg.pageBytes;
    });
    mirrorGen = vm.generation();
    return true;
}

RefOutcome
RefMemorySystem::access(CpuId cpu, const MemAccess &acc, Cycles now,
                        PAddr observed_pa)
{
    RefPort &p = ports[cpu];
    RefOutcome out;

    PageNum vpn = acc.va / cfg.pageBytes;
    VAddr offset = acc.va % cfg.pageBytes;

    // Fault prediction uses the mirror as of the *previous*
    // observation: remaps and steals never change which vpns are
    // mapped, so membership is accurate even before a resync — and
    // predicting before resyncing is what keeps a steal triggered by
    // this very fault from leaking the new mapping back in time.
    auto mit = mirror.find(vpn);
    out.pageFault = mit == mirror.end();

    if (!p.tlb.accessAndUpdate(vpn)) {
        out.tlbMiss = true;
        out.kernel += cfg.tlbMissCycles;
    }
    if (out.pageFault)
        out.kernel += cfg.pageFaultCycles;

    // Now fold in whatever the fault did to the mapping: a steal or
    // recolor bumps the generation (full resync), a plain allocation
    // is adopted from the observed physical address.
    if (resyncIfStale())
        mit = mirror.find(vpn);
    if (mit == mirror.end())
        mit = mirror.emplace(vpn, observed_pa - offset).first;
    out.pa = mit->second + offset;

    Cycles t = now + out.kernel;
    Addr line = out.pa / cfg.l2.lineBytes;

    bool is_write = acc.kind == AccessKind::Store;
    RefCache &l1 = acc.kind == AccessKind::Ifetch ? p.l1i : p.l1d;
    RefLine *l1l = l1.access(acc.va, line);
    bool l1_data_hit = l1l != nullptr;
    bool need_l2 = !l1l || (is_write && !mesiWritable(l1l->state));

    if (!need_l2) {
        if (is_write) {
            l1l->state = Mesi::Modified;
            l1l->dirty = true;
            recordWrite(cpu, line, acc.wordMask);
        }
        out.l1Hit = true;
        out.stall = out.kernel;
        // Inclusion keeps every L1-resident line in the L2; a pure
        // L1 hit leaves its L2 state untouched, so report it as-is.
        if (const RefLine *inc = p.l2.probe(indexOf(line), line))
            out.l2State = inc->state;
        return out;
    }

    RefL2Result r = l2Access(cpu, line, is_write, acc.wordMask, t,
                             false);
    out.l2Hit = r.hit;
    out.l2Miss = r.miss;
    out.missKind = r.kind;
    out.l2State = r.state;

    if (l1_data_hit) {
        l1l->state = Mesi::Modified;
        l1l->dirty = true;
    } else {
        Mesi fill_state;
        if (is_write)
            fill_state = Mesi::Modified;
        else
            fill_state = r.writable ? Mesi::Exclusive : Mesi::Shared;
        RefLine victim;
        bool evicted = false;
        RefLine *nl = l1.insert(acc.va, line, fill_state, &victim,
                                &evicted);
        nl->dirty = is_write;
        if (evicted) {
            if (victim.dirty) {
                RefLine *l2v = p.l2.probe(indexOf(victim.line),
                                          victim.line);
                panicIfNot(l2v != nullptr,
                           "ref model: inclusion violated for dirty "
                           "L1 victim ", victim.line);
                l2v->state = Mesi::Modified;
            }
            // Recycle the victim's residence node for the new line.
            auto node = p.l1Residence.extract(victim.line);
            if (!node.empty()) {
                node.key() = line;
                node.mapped() = acc.va;
                auto ins = p.l1Residence.insert(std::move(node));
                if (!ins.inserted)
                    ins.position->second = acc.va;
            } else {
                p.l1Residence[line] = acc.va;
            }
        } else {
            p.l1Residence[line] = acc.va;
        }
    }

    out.stall = out.kernel + r.latency;
    return out;
}

RefMemorySystem::RefL2Result
RefMemorySystem::l2Access(CpuId cpu, Addr line, bool is_write,
                          std::uint32_t word_mask, Cycles now,
                          bool is_prefetch)
{
    RefPort &p = ports[cpu];
    Addr idx = indexOf(line);
    RefL2Result r;

    RefLine *l2l = p.l2.access(idx, line);

    bool shadow_hit = false;
    bool seen = false;
    if (!is_prefetch) {
        shadow_hit = p.shadow.accessAndUpdate(line);
        seen = !p.cold.insert(line).second;
    }

    if (l2l) {
        r.hit = true;
        auto pf = p.prefetches.find(line);
        if (pf != p.prefetches.end() && !is_prefetch) {
            if (pf->second > now) {
                Cycles wait = pf->second - now;
                r.latency += wait;
                now += wait;
            }
            p.prefetches.erase(pf);
        }

        if (is_write && l2l->state == Mesi::Shared) {
            Cycles start = bus.acquire(BusKind::Upgrade, now);
            Cycles lat = (start - now) + cfg.busUpgradeCycles;
            invalidateOthers(cpu, line, word_mask);
            l2l->state = Mesi::Modified;
            r.latency += lat;
            r.kind = MissKind::Upgrade;
        } else {
            if (is_write) {
                l2l->state = Mesi::Modified;
                recordWrite(cpu, line, word_mask);
            }
            if (!is_prefetch)
                r.latency += cfg.l2HitCycles;
        }
        r.writable = mesiWritable(l2l->state);
        r.state = l2l->state;
        return r;
    }

    r.miss = true;
    if (!is_prefetch)
        r.kind = classifyMiss(cpu, line, word_mask, seen, shadow_hit);

    bool shared_elsewhere = false;
    CpuId dirty_owner = kNoCpu;
    for (std::uint32_t q = 0; q < cfg.numCpus; q++) {
        if (q == cpu)
            continue;
        RefLine *rl = ports[q].l2.probe(idx, line);
        if (rl) {
            shared_elsewhere = true;
            if (rl->state == Mesi::Modified) {
                dirty_owner = q;
            } else if (rl->state == Mesi::Exclusive) {
                auto res = ports[q].l1Residence.find(line);
                if (res != ports[q].l1Residence.end()) {
                    RefLine *c = ports[q].l1d.probe(res->second, line);
                    if (c && c->dirty) {
                        rl->state = Mesi::Modified;
                        dirty_owner = q;
                    }
                }
            }
        }
    }

    Cycles start = bus.acquire(BusKind::Data, now);
    Cycles service = dirty_owner != kNoCpu
                         ? cfg.remoteDirtyLatencyCycles
                         : cfg.memLatencyCycles;
    r.latency += (start - now) + service;

    Mesi new_state;
    if (is_write) {
        invalidateOthers(cpu, line, word_mask);
        new_state = Mesi::Modified;
    } else {
        if (dirty_owner != kNoCpu) {
            RefLine *ol = ports[dirty_owner].l2.probe(idx, line);
            ol->state = Mesi::Shared;
            auto res = ports[dirty_owner].l1Residence.find(line);
            if (res != ports[dirty_owner].l1Residence.end()) {
                RefPort &op = ports[dirty_owner];
                if (RefLine *c = op.l1d.probe(res->second, line)) {
                    c->state = Mesi::Shared;
                    c->dirty = false;
                } else if (RefLine *c2 =
                               op.l1i.probe(res->second, line)) {
                    c2->state = Mesi::Shared;
                    c2->dirty = false;
                }
            }
        } else if (shared_elsewhere) {
            for (std::uint32_t q = 0; q < cfg.numCpus; q++) {
                if (q == cpu)
                    continue;
                if (RefLine *rl = ports[q].l2.probe(idx, line)) {
                    if (rl->state == Mesi::Exclusive)
                        rl->state = Mesi::Shared;
                }
            }
        }
        new_state = shared_elsewhere ? Mesi::Shared : Mesi::Exclusive;
    }

    RefLine victim;
    bool evicted = false;
    p.l2.insert(idx, line, new_state, &victim, &evicted);
    if (evicted) {
        backInvalidateL1(cpu, victim.line);
        if (victim.state == Mesi::Modified)
            bus.acquire(BusKind::Writeback, now);
    }

    if (is_write)
        recordWrite(cpu, line, word_mask);

    r.writable = mesiWritable(new_state);
    r.state = new_state;
    return r;
}

Cycles
RefMemorySystem::prefetch(CpuId cpu, VAddr va, Cycles now)
{
    resyncIfStale();
    RefPort &p = ports[cpu];
    PageNum vpn = va / cfg.pageBytes;

    if (!p.tlb.contains(vpn))
        return 0; // dropped: page not mapped in the TLB
    auto mit = mirror.find(vpn);
    if (mit == mirror.end())
        return 0; // dropped: page unmapped
    PAddr pa = mit->second + va % cfg.pageBytes;
    Addr line = pa / cfg.l2.lineBytes;

    if (p.l2.probe(indexOf(line), line) || p.prefetches.count(line))
        return 0;

    Cycles stall = 0;
    std::uint32_t in_flight = 0;
    Cycles earliest = 0;
    for (const auto &[l, ready] : p.prefetches) {
        if (ready > now) {
            in_flight++;
            if (in_flight == 1 || ready < earliest)
                earliest = ready;
        }
    }
    if (in_flight >= cfg.maxOutstandingPrefetches) {
        stall = earliest - now;
        now = earliest;
    }

    RefL2Result r = l2Access(cpu, line, false, 0, now, true);
    p.prefetches[line] = now + r.latency;

    if (p.prefetches.size() > 4096) {
        for (auto it = p.prefetches.begin();
             it != p.prefetches.end();) {
            if (it->second <= now)
                it = p.prefetches.erase(it);
            else
                ++it;
        }
    }
    return stall;
}

PAddr
RefMemorySystem::purgePage(VAddr va)
{
    // Purges fire before the mapping mutates (both in stealMappedPage
    // and in the recolorer), so the mirror still holds the old page.
    resyncIfStale();
    PageNum vpn = va / cfg.pageBytes;
    auto mit = mirror.find(vpn);
    panicIfNot(mit != mirror.end(),
               "ref model: purge of a page the mirror never saw, "
               "vpn ", vpn);
    PAddr pa = mit->second + va % cfg.pageBytes;

    Addr first_line = pa / cfg.l2.lineBytes;
    std::uint64_t lines = cfg.linesPerPage();
    for (std::uint64_t i = 0; i < lines; i++) {
        Addr line = first_line + i;
        for (std::uint32_t q = 0; q < cfg.numCpus; q++) {
            RefPort &p = ports[q];
            if (RefLine *l = p.l2.probe(indexOf(line), line)) {
                if (l->state == Mesi::Modified)
                    bus.acquire(BusKind::Writeback, bus.freeAt());
                p.l2.invalidate(indexOf(line), line);
                backInvalidateL1(q, line);
            }
            p.prefetches.erase(line);
        }
        sharing.erase(line);
    }
    for (std::uint32_t q = 0; q < cfg.numCpus; q++)
        ports[q].tlb.invalidate(vpn);
    return pa;
}

void
RefMemorySystem::invalidateOthers(CpuId writer, Addr line,
                                  std::uint32_t word_mask)
{
    Addr idx = indexOf(line);
    bool any = false;
    for (std::uint32_t q = 0; q < cfg.numCpus; q++) {
        if (q == writer)
            continue;
        if (ports[q].l2.invalidate(idx, line)) {
            any = true;
            backInvalidateL1(q, line);
            RefSharing &info = sharing[line];
            info.invalidatedMask |= 1u << q;
            info.writtenSince[q] = 0;
        }
    }
    if (any || sharing.count(line))
        recordWrite(writer, line, word_mask);
}

void
RefMemorySystem::recordWrite(CpuId writer, Addr line,
                             std::uint32_t word_mask)
{
    (void)writer;
    auto it = sharing.find(line);
    if (it == sharing.end() || it->second.invalidatedMask == 0)
        return;
    std::uint32_t mask = it->second.invalidatedMask;
    for (std::uint32_t q = 0; mask; q++, mask >>= 1) {
        if (mask & 1)
            it->second.writtenSince[q] |= word_mask;
    }
}

void
RefMemorySystem::backInvalidateL1(CpuId cpu, Addr line)
{
    RefPort &p = ports[cpu];
    auto res = p.l1Residence.find(line);
    if (res == p.l1Residence.end())
        return;
    VAddr index_addr = res->second;
    if (!p.l1d.invalidate(index_addr, line))
        p.l1i.invalidate(index_addr, line);
    p.l1Residence.erase(line);
}

MissKind
RefMemorySystem::classifyMiss(CpuId cpu, Addr line,
                              std::uint32_t word_mask,
                              bool seen_before, bool shadow_hit)
{
    auto it = sharing.find(line);
    if (it != sharing.end() &&
        (it->second.invalidatedMask & (1u << cpu))) {
        bool is_true =
            (word_mask & it->second.writtenSince[cpu]) != 0;
        it->second.invalidatedMask &= ~(1u << cpu);
        it->second.writtenSince[cpu] = 0;
        if (it->second.invalidatedMask == 0)
            sharing.erase(it);
        return is_true ? MissKind::TrueSharing
                       : MissKind::FalseSharing;
    }
    if (!seen_before)
        return MissKind::Cold;
    return shadow_hit ? MissKind::Conflict : MissKind::Capacity;
}

} // namespace cdpc::verify
