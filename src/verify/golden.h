/**
 * @file
 * Golden-output registry (DESIGN.md §11): the committed per-figure
 * result digests under tests/golden/ and the machinery to regenerate
 * and check them.
 *
 * Each figure (fig6/fig7/fig8/table2) is a fixed grid of experiment
 * jobs. Running the grid yields one canonical record line per job —
 * key metrics printed with %.17g so the text round-trips doubles
 * exactly — plus an FNV-1a digest over all record lines. The files
 * are plain text, diffable, and regenerated only by an explicit
 * `golden_check <figure> --update`.
 */

#ifndef CDPC_VERIFY_GOLDEN_H
#define CDPC_VERIFY_GOLDEN_H

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "harness/experiment.h"

namespace cdpc::verify
{

/** One cell of a golden figure grid. */
struct GoldenJob
{
    /** Stable record key, e.g. "swim/cdpc/cpus=4/scaled". */
    std::string label;
    std::string workload;
    ExperimentConfig config;
};

/** The registered figures, in canonical order. */
const std::vector<std::string> &goldenFigures();

/** The job grid of one figure; fatal() on an unknown name. */
std::vector<GoldenJob> goldenJobs(const std::string &figure);

/** Canonical record line (no newline) for one finished job. */
std::string goldenRecord(const std::string &label,
                         const ExperimentResult &result);

/** 64-bit FNV-1a over @p text. */
std::uint64_t fnv1a(const std::string &text);

/** Parsed golden data: digest plus label -> (field -> value). */
struct GoldenData
{
    std::uint64_t digest = 0;
    /** Record lines in file order, keyed by label. */
    std::map<std::string, std::map<std::string, std::string>> records;
};

/** Build GoldenData from canonical record lines. */
GoldenData goldenFromRecords(const std::vector<std::string> &lines);

/** Render a committed golden file (header, digest, records). */
std::string renderGolden(const std::string &figure,
                         const std::vector<std::string> &lines);

/** Parse a golden file; fatal() on malformed content. */
GoldenData parseGolden(std::istream &in, const std::string &name);

/** One disagreement between golden and actual data. */
struct GoldenDiff
{
    std::string label;
    /** Empty when a whole record is missing on one side. */
    std::string field;
    std::string golden; ///< "<absent>" when only actual has it
    std::string actual; ///< "<absent>" when only golden has it
};

/** Field-by-field comparison; empty result means identical. */
std::vector<GoldenDiff> diffGolden(const GoldenData &golden,
                                   const GoldenData &actual);

} // namespace cdpc::verify

#endif // CDPC_VERIFY_GOLDEN_H
