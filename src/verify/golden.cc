#include "verify/golden.h"

#include <cstdio>
#include <cstdlib>
#include <istream>
#include <sstream>

#include "common/digest.h"
#include "common/logging.h"

namespace cdpc::verify
{

namespace
{

/** %.17g: enough digits to round-trip any double exactly. */
std::string
metric(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

MachineConfig
machineNamed(const std::string &name, std::uint32_t cpus)
{
    if (name == "scaled")
        return MachineConfig::paperScaled(cpus);
    if (name == "scaled-2way")
        return MachineConfig::paperScaledTwoWay(cpus);
    if (name == "scaled-4mb")
        return MachineConfig::paperScaledBig(cpus);
    if (name == "alpha")
        return MachineConfig::alphaScaled(cpus);
    if (name == "scaled-slicedhash")
        return MachineConfig::paperScaledSlicedHash(cpus);
    if (name == "dram-cache")
        return MachineConfig::dramCacheMode(cpus);
    panic("unknown golden machine preset ", name);
}

const char *
policyTag(MappingPolicy p)
{
    switch (p) {
      case MappingPolicy::PageColoring:
        return "pc";
      case MappingPolicy::BinHopping:
        return "bh";
      case MappingPolicy::Cdpc:
        return "cdpc";
      case MappingPolicy::CdpcTouchOrder:
        return "cdpc-touch";
      default:
        return "other";
    }
}

GoldenJob
makeGoldenJob(const std::string &workload, MappingPolicy policy,
              std::uint32_t cpus, const std::string &machine,
              bool prefetch = false)
{
    GoldenJob job;
    job.workload = workload;
    job.config.machine = machineNamed(machine, cpus);
    job.config.mapping = policy;
    job.config.prefetch = prefetch;
    std::ostringstream label;
    label << workload << "/" << policyTag(policy) << "/cpus=" << cpus
          << "/" << machine;
    if (prefetch)
        label << "/prefetch";
    job.label = label.str();
    return job;
}

} // namespace

const std::vector<std::string> &
goldenFigures()
{
    static const std::vector<std::string> figures = {
        "fig6", "fig7", "fig8", "table2", "tenant1"};
    return figures;
}

std::vector<GoldenJob>
goldenJobs(const std::string &figure)
{
    std::vector<GoldenJob> jobs;

    if (figure == "fig6") {
        // Combined execution time, page coloring vs CDPC, 1..16 CPUs.
        const char *apps[] = {"tomcatv", "swim",  "su2cor", "hydro2d",
                              "mgrid",   "applu", "turb3d", "wave5"};
        const std::uint32_t cpus[] = {1, 2, 4, 8, 16};
        for (const char *app : apps) {
            for (std::uint32_t p : cpus) {
                jobs.push_back(makeGoldenJob(
                    app, MappingPolicy::PageColoring, p, "scaled"));
                jobs.push_back(makeGoldenJob(app, MappingPolicy::Cdpc,
                                             p, "scaled"));
            }
        }
        return jobs;
    }

    if (figure == "fig7") {
        // Cache-architecture sensitivity: 2-way and 4 MB external
        // caches at 8 CPUs.
        const char *apps[] = {"tomcatv", "swim",  "su2cor",
                              "hydro2d", "mgrid", "applu"};
        const char *machines[] = {"scaled-2way", "scaled-4mb"};
        for (const char *app : apps) {
            for (const char *m : machines) {
                jobs.push_back(makeGoldenJob(
                    app, MappingPolicy::PageColoring, 8, m));
                jobs.push_back(
                    makeGoldenJob(app, MappingPolicy::Cdpc, 8, m));
            }
        }
        return jobs;
    }

    if (figure == "fig8") {
        // Interaction with compiler prefetching at 8 CPUs.
        const char *apps[] = {"tomcatv", "swim", "hydro2d", "mgrid",
                              "applu"};
        for (const char *app : apps) {
            for (bool prefetch : {false, true}) {
                jobs.push_back(
                    makeGoldenJob(app, MappingPolicy::PageColoring, 8,
                                  "scaled", prefetch));
                jobs.push_back(makeGoldenJob(app, MappingPolicy::Cdpc,
                                             8, "scaled", prefetch));
            }
        }
        return jobs;
    }

    if (figure == "table2") {
        // The Digital UNIX implementation: bin hopping vs page
        // coloring vs touch-order CDPC on the Alpha-like machine.
        const std::uint32_t cpus[] = {1, 4, 8};
        for (const WorkloadInfo &w : allWorkloads()) {
            auto dot = w.name.find('.');
            std::string app = dot == std::string::npos
                                  ? w.name
                                  : w.name.substr(dot + 1);
            for (std::uint32_t p : cpus) {
                jobs.push_back(makeGoldenJob(
                    app, MappingPolicy::BinHopping, p, "alpha"));
                jobs.push_back(makeGoldenJob(
                    app, MappingPolicy::PageColoring, p, "alpha"));
                jobs.push_back(makeGoldenJob(
                    app, MappingPolicy::CdpcTouchOrder, p, "alpha"));
            }
        }
        return jobs;
    }

    if (figure == "tenant1") {
        // The multi-tenant degeneracy contract: golden_check runs
        // each of these jobs both as a plain experiment and as a
        // 1-tenant unlimited-budget scenario, fatals unless the two
        // agree byte-for-byte, and records the (shared) results.
        jobs.push_back(
            makeGoldenJob("tomcatv", MappingPolicy::Cdpc, 4, "scaled"));
        jobs.push_back(makeGoldenJob(
            "mgrid", MappingPolicy::PageColoring, 2, "scaled"));
        return jobs;
    }

    fatal("unknown golden figure '", figure, "' (have: fig6 fig7 fig8 "
          "table2 tenant1)");
}

std::string
goldenRecord(const std::string &label, const ExperimentResult &r)
{
    const WeightedTotals &t = r.totals;
    std::ostringstream os;
    os << label << " combined=" << metric(t.combinedTime())
       << " wall=" << metric(t.wall) << " mcpi=" << metric(t.mcpi())
       << " l2Misses=" << metric(t.l2Misses)
       << " cold=" << metric(t.missCountOf(MissKind::Cold))
       << " capacity=" << metric(t.missCountOf(MissKind::Capacity))
       << " conflict=" << metric(t.missCountOf(MissKind::Conflict))
       << " trueSharing="
       << metric(t.missCountOf(MissKind::TrueSharing))
       << " falseSharing="
       << metric(t.missCountOf(MissKind::FalseSharing))
       << " upgrade=" << metric(t.missCountOf(MissKind::Upgrade))
       << " busQueueing=" << metric(t.busQueueing)
       << " hintsHonored=" << metric(r.hintsHonored);
    return os.str();
}

std::uint64_t
fnv1a(const std::string &text)
{
    return cdpc::fnv1a(text);
}

namespace
{

std::map<std::string, std::string>
parseFields(std::istringstream &in, const std::string &context)
{
    std::map<std::string, std::string> fields;
    std::string kv;
    while (in >> kv) {
        auto eq = kv.find('=');
        fatalIf(eq == std::string::npos, context,
                ": expected key=value, got '", kv, "'");
        fields[kv.substr(0, eq)] = kv.substr(eq + 1);
    }
    fatalIf(fields.empty(), context, ": record has no fields");
    return fields;
}

} // namespace

GoldenData
goldenFromRecords(const std::vector<std::string> &lines)
{
    GoldenData data;
    std::string all;
    for (const std::string &line : lines) {
        all += line;
        all += '\n';
        std::istringstream in(line);
        std::string label;
        in >> label;
        data.records[label] =
            parseFields(in, "golden record '" + label + "'");
    }
    data.digest = fnv1a(all);
    return data;
}

std::string
renderGolden(const std::string &figure,
             const std::vector<std::string> &lines)
{
    std::string all;
    for (const std::string &line : lines) {
        all += line;
        all += '\n';
    }
    std::ostringstream os;
    os << "# cdpc golden results for " << figure
       << "; regenerate: golden_check " << figure << " --update\n";
    char buf[32];
    std::snprintf(buf, sizeof buf, "0x%016llx",
                  static_cast<unsigned long long>(fnv1a(all)));
    os << "digest " << buf << "\n" << all;
    return os.str();
}

GoldenData
parseGolden(std::istream &in, const std::string &name)
{
    GoldenData data;
    bool have_digest = false;
    std::string all;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        lineno++;
        auto first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos || line[first] == '#')
            continue;
        std::istringstream ls(line);
        std::string head;
        ls >> head;
        if (head == "digest") {
            fatalIf(have_digest, name, ":", lineno,
                    ": duplicate digest line");
            std::string hex;
            ls >> hex;
            fatalIf(hex.empty(), name, ":", lineno,
                    ": digest line has no value");
            data.digest = std::strtoull(hex.c_str(), nullptr, 16);
            have_digest = true;
            continue;
        }
        std::ostringstream ctx;
        ctx << name << ":" << lineno;
        data.records[head] = parseFields(ls, ctx.str());
        all += line;
        all += '\n';
    }
    fatalIf(!have_digest, name, ": no digest line");
    fatalIf(data.records.empty(), name, ": no records");
    fatalIf(fnv1a(all) != data.digest, name,
            ": digest does not match records — file edited by hand "
            "or truncated; regenerate with golden_check --update");
    return data;
}

std::vector<GoldenDiff>
diffGolden(const GoldenData &golden, const GoldenData &actual)
{
    std::vector<GoldenDiff> diffs;
    for (const auto &[label, gfields] : golden.records) {
        auto ait = actual.records.find(label);
        if (ait == actual.records.end()) {
            diffs.push_back({label, "", "<record>", "<absent>"});
            continue;
        }
        for (const auto &[field, gval] : gfields) {
            auto fit = ait->second.find(field);
            if (fit == ait->second.end()) {
                diffs.push_back({label, field, gval, "<absent>"});
            } else if (fit->second != gval) {
                diffs.push_back({label, field, gval, fit->second});
            }
        }
        for (const auto &[field, aval] : ait->second) {
            if (!gfields.contains(field))
                diffs.push_back({label, field, "<absent>", aval});
        }
    }
    for (const auto &[label, afields] : actual.records) {
        if (!golden.records.contains(label))
            diffs.push_back({label, "", "<absent>", "<record>"});
    }
    return diffs;
}

} // namespace cdpc::verify
