#include "harness/spec.h"

#include "common/logging.h"
#include "common/stats.h"

namespace cdpc
{

double
specRatio(double base_wall, double run_wall)
{
    fatalIf(base_wall <= 0.0 || run_wall <= 0.0,
            "specRatio needs positive wall-clock cycles");
    return kUniprocessorRating * base_wall / run_wall;
}

double
specRating(const std::vector<double> &ratios)
{
    return geometricMean(ratios);
}

} // namespace cdpc
