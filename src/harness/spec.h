/**
 * @file
 * SPEC95fp ratio computation (paper, Table 2 and Section 7).
 *
 * A SPECratio is reference-time / measured-time. Our simulated
 * machine is a scale model, so absolute seconds are meaningless;
 * instead we anchor each benchmark's uniprocessor bin-hopping run to
 * the paper's uniprocessor rating (Table 2 reports a SPEC95fp of
 * 13.7 for one CPU) and derive every other configuration's ratio
 * from relative simulated wall-clock cycles. All *relative* numbers
 * — speedups, CDPC-vs-policy gaps, geometric means — are unaffected
 * by the anchor.
 */

#ifndef CDPC_HARNESS_SPEC_H
#define CDPC_HARNESS_SPEC_H

#include <string>
#include <vector>

namespace cdpc
{

/** The paper's uniprocessor SPEC95fp rating used as the anchor. */
inline constexpr double kUniprocessorRating = 13.7;

/**
 * Ratio of a run given the benchmark's anchored uniprocessor
 * wall-clock cycles.
 *
 * @param base_wall uniprocessor (bin hopping, aligned) wall cycles
 * @param run_wall this configuration's wall cycles
 */
double specRatio(double base_wall, double run_wall);

/** Geometric mean of per-benchmark ratios (the SPEC95fp rating). */
double specRating(const std::vector<double> &ratios);

} // namespace cdpc

#endif // CDPC_HARNESS_SPEC_H
