/**
 * @file
 * The experiment harness: one call runs a workload under a given
 * machine configuration, page mapping policy, layout and prefetch
 * setting — the cross product behind every figure and table of the
 * paper's evaluation.
 */

#ifndef CDPC_HARNESS_EXPERIMENT_H
#define CDPC_HARNESS_EXPERIMENT_H

#include <optional>
#include <string>
#include <vector>

#include "cdpc/runtime.h"
#include "compiler/compiler.h"
#include "ir/program.h"
#include "machine/config.h"
#include "machine/simulator.h"
#include "machine/stats.h"
#include "mem/recolor.h"
#include "obs/profile.h"
#include "obs/snapshot.h"
#include "vm/fallback.h"
#include "vm/hints.h"
#include "vm/pressure.h"
#include "vm/virtual_memory.h"
#include "workloads/workload.h"

namespace cdpc
{

/** Which page-mapping setup an experiment uses. */
enum class MappingPolicy
{
    /** IRIX-style page coloring (vpn mod colors). */
    PageColoring,
    /** Digital UNIX-style bin hopping (fault-order cycling). */
    BinHopping,
    /** CDPC hints over page coloring (the IRIX implementation). */
    Cdpc,
    /**
     * CDPC realized purely by touch order on a bin-hopping kernel
     * (the Digital UNIX implementation, Section 5.3).
     */
    CdpcTouchOrder,
    /** Random color per fault (research baseline). */
    Random,
    /** XOR-folded hashed coloring (deterministic de-aliasing). */
    Hash,
};

/** @return a display name ("page-coloring", "cdpc", ...). */
const char *mappingName(MappingPolicy p);

/** Full experiment specification. */
struct ExperimentConfig
{
    MachineConfig machine = MachineConfig::paperScaled(1);
    MappingPolicy mapping = MappingPolicy::PageColoring;
    /** Apply the Section 5.4 alignment/padding layout. */
    bool aligned = true;
    /** Insert compiler prefetches (Section 6.2). */
    bool prefetch = false;
    /** Model the bin-hopping kernel race on concurrent faults. */
    bool binHopRacy = true;
    /** CDPC algorithm knobs (ablations). */
    CdpcOptions cdpcOptions;
    SimOptions sim;
    std::uint64_t seed = 1;
    /**
     * Pages held by "other processes" before the run, concentrated
     * on the lower half of the colors — models the memory pressure
     * under which the kernel cannot honor every hint (Section 5,
     * step 3 of the paper's pipeline).
     */
    std::uint64_t preallocatedPages = 0;
    /**
     * Enable the dynamic recoloring extension on top of the chosen
     * mapping (the Section 2.1 alternative the paper left
     * unevaluated for multiprocessors).
     */
    bool dynamicRecolor = false;
    RecolorConfig recolor;
    /**
     * Simulated competitor processes claiming pages before the run
     * (reclaimable, unlike preallocatedPages) — the memory-pressure
     * regime where hints degrade instead of being free.
     */
    MemPressureConfig pressure;
    /** What a fault gets when its preferred color has no free page. */
    FallbackKind fallback = FallbackKind::AnyColor;
    /**
     * Lockstep-verify every reference against the simple reference
     * memory system (src/verify/), deep-comparing the full structural
     * state every this many references. 0 disables verification.
     */
    std::uint64_t verifyEvery = 0;
    /**
     * Run the runtime structural auditors (cache/LRU/MESI/page-table
     * invariants) every this many references. 0 disables.
     */
    std::uint64_t auditEvery = 0;
    /**
     * Attach the conflict-attribution profiler (DESIGN.md §15): an
     * evictor→victim matrix per color, per-color occupancy snapshot
     * rows, and the recoloring advisor's proposals land in
     * ExperimentResult::profile. Forces parallel nests serial, like
     * every order-sensitive observer; off by default so figure
     * outputs stay byte-identical.
     */
    bool profile = false;
    /**
     * Preferred-color overrides installed over the base policy (and
     * over any CDPC hints — later installs win). The advisor's
     * validation re-runs use this to apply a proposed move while
     * keeping everything else identical.
     */
    std::vector<ColorHint> colorOverrides;
};

/** Everything one experiment produced. */
struct ExperimentResult
{
    std::string workload;
    std::string policy;
    std::uint32_t ncpus = 1;
    WeightedTotals totals;
    /** Fraction of color preferences the allocator honored. */
    double hintsHonored = 1.0;
    /**
     * Per-fault degradation breakdown (hint honored / fallback /
     * denied, steals and competitor reclaims) from the VM layer.
     */
    VmStats degradation;
    /** Pages pre-claimed by the simulated competitors. */
    std::uint64_t pressurePages = 0;
    /** The CDPC plan, present for Cdpc/CdpcTouchOrder runs. */
    std::optional<CdpcPlan> plan;
    /** The compiled program's summaries (for inspection). */
    AccessSummaries summaries;
    /** Scaled data-set size of the program. */
    std::uint64_t dataSetBytes = 0;
    /** Dynamic-recoloring statistics (when the extension ran). */
    RecolorStats recolorStats;
    /**
     * Interval snapshots (sim.statsInterval > 0): the per-CPU
     * miss-rate / miss-class / color-occupancy time series. Pure
     * simulation data, deterministic across worker counts.
     */
    std::vector<obs::IntervalSnapshot> snapshots;
    /** Lockstep-verification counters (config.verifyEvery > 0). */
    std::uint64_t verifiedRefs = 0;
    std::uint64_t verifiedDeepCompares = 0;
    /** Cadence audits that ran (config.auditEvery > 0). */
    std::uint64_t auditsRun = 0;
    /**
     * Conflict attribution and advice (config.profile); enabled is
     * false on unprofiled runs and nothing is rendered for them.
     */
    obs::ProfileResult profile;
};

/** Compile and run @p program under @p config. */
ExperimentResult runProgram(Program program,
                            const ExperimentConfig &config);

/** Build the named workload and run it. */
ExperimentResult runWorkload(const std::string &name,
                             const ExperimentConfig &config);

} // namespace cdpc

#endif // CDPC_HARNESS_EXPERIMENT_H
