/**
 * @file
 * Per-array miss attribution.
 *
 * The paper reasons constantly about *which data structure* is
 * conflicting (tomcatv's seven arrays, su2cor's propagators...).
 * This analysis makes that visible for any experiment: it records
 * the demand trace of a run and replays it through an identically
 * configured hierarchy (replay equivalence is property-tested),
 * mapping every reference to the array that owns its address and
 * accumulating per-array reference and miss-classification counts.
 */

#ifndef CDPC_HARNESS_ATTRIBUTION_H
#define CDPC_HARNESS_ATTRIBUTION_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "harness/experiment.h"

namespace cdpc
{

/** Per-array attribution record. */
struct ArrayAttribution
{
    std::string name;
    std::uint64_t sizeBytes = 0;
    std::uint64_t refs = 0;
    std::uint64_t l2Misses = 0;
    /** Indexed by MissKind. */
    std::array<std::uint64_t, 6> missCount{};

    double
    missRate() const
    {
        return refs ? static_cast<double>(l2Misses) / refs : 0.0;
    }
};

/** Attribution for one whole experiment. */
struct AttributionResult
{
    std::vector<ArrayAttribution> arrays;
    /** References outside every array (text segment etc.). */
    ArrayAttribution other;
};

/**
 * Run @p workload under @p config and attribute every demand
 * reference and external-cache miss to the array that owns it.
 * Prefetching and dynamic recoloring are ignored for attribution
 * (the replay covers the demand stream).
 */
AttributionResult attributeMisses(const std::string &workload,
                                  const ExperimentConfig &config);

} // namespace cdpc

#endif // CDPC_HARNESS_ATTRIBUTION_H
