#include "harness/experiment.h"

#include "common/logging.h"
#include "common/stats.h"
#include "mem/memsystem.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "verify/differential.h"
#include "vm/hints.h"
#include "vm/physmem.h"
#include "vm/policy.h"
#include "vm/virtual_memory.h"

namespace cdpc
{

const char *
mappingName(MappingPolicy p)
{
    switch (p) {
      case MappingPolicy::PageColoring:
        return "page-coloring";
      case MappingPolicy::BinHopping:
        return "bin-hopping";
      case MappingPolicy::Cdpc:
        return "cdpc";
      case MappingPolicy::CdpcTouchOrder:
        return "cdpc-touch-order";
      case MappingPolicy::Random:
        return "random";
      case MappingPolicy::Hash:
        return "hash";
    }
    return "unknown";
}

ExperimentResult
runProgram(Program program, const ExperimentConfig &config)
{
    const MachineConfig &m = config.machine;
    m.validate();

    // --- Compile -------------------------------------------------------
    CompilerOptions copts;
    copts.align = config.aligned;
    copts.prefetch = config.prefetch;
    copts.aligner.lineBytes = m.l2.lineBytes;
    copts.aligner.l1SpanBytes = m.l1d.sizeBytes / m.l1d.assoc;
    copts.prefetcher.lineBytes = m.l2.lineBytes;
    copts.prefetcher.targetLatency = m.memLatencyCycles;
    copts.prefetcher.minArrayBytes = m.l2.sizeBytes / 2;
    obs::PhaseSpan compile_span("compile");
    CompileResult compiled = compileProgram(program, copts);
    compile_span.end();

    // --- Operating system ---------------------------------------------
    PhysMem phys(m.physPages, m.indexFunction());
    RandomPolicy random(m.numColors(), config.seed);
    HashPolicy hash(m.numColors());
    fatalIf(config.preallocatedPages >= m.physPages,
            "preallocatedPages leaves no memory for the application");
    // Legacy hog: competing processes pin (non-reclaimably) the lower
    // half of the color space.
    std::uint64_t half = std::max<std::uint64_t>(m.numColors() / 2, 1);
    for (std::uint64_t i = 0; i < config.preallocatedPages; i++)
        phys.alloc(static_cast<Color>(i % half));
    // Reclaimable competitor processes (the pressure model).
    PressureStats pressure = applyMemoryPressure(phys, config.pressure);
    std::unique_ptr<ColorFallbackPolicy> fallback =
        makeFallbackPolicy(config.fallback);
    PageColoringPolicy coloring(m.numColors());
    BinHoppingPolicy binhop(m.numColors(), config.binHopRacy,
                            config.seed);

    PageMappingPolicy *base = nullptr;
    switch (config.mapping) {
      case MappingPolicy::PageColoring:
      case MappingPolicy::Cdpc:
        base = &coloring;
        break;
      case MappingPolicy::BinHopping:
      case MappingPolicy::CdpcTouchOrder:
        base = &binhop;
        break;
      case MappingPolicy::Random:
        base = &random;
        break;
      case MappingPolicy::Hash:
        base = &hash;
        break;
    }
    CdpcHintPolicy hints(*base);

    bool use_cdpc = config.mapping == MappingPolicy::Cdpc ||
                    config.mapping == MappingPolicy::CdpcTouchOrder;
    PageMappingPolicy *active =
        config.mapping == MappingPolicy::Cdpc
            ? static_cast<PageMappingPolicy *>(&hints)
            : base;
    // Advisor-validation overrides ride the hint policy whatever the
    // base mapping is; unhinted pages still fall through to it.
    if (!config.colorOverrides.empty())
        active = &hints;

    VirtualMemory vm(m, phys, *active, fallback.get());

    // --- CDPC run-time library ------------------------------------------
    ExperimentResult res;
    res.summaries = compiled.summaries;
    if (use_cdpc) {
        obs::PhaseSpan coloring_span("coloring");
        CdpcPlan plan = computeCdpcPlan(compiled.summaries,
                                        cdpcParams(m),
                                        config.cdpcOptions);
        if (config.mapping == MappingPolicy::Cdpc)
            applyHints(plan, hints);
        else
            applyByTouchOrder(plan, vm);
        res.plan = std::move(plan);
    }
    // Installed after the plan's hints so the overrides win (later
    // madviseColors installs overwrite earlier ones per page).
    if (!config.colorOverrides.empty())
        hints.madviseColors(config.colorOverrides);

    // --- Simulate --------------------------------------------------------
    MemorySystem mem(m, vm);
    // A stolen-page remap must purge the victim's stale lines and TLB
    // entries, exactly like a dynamic recoloring remap.
    vm.setRemapObserver([&](PageNum vpn) {
        mem.purgePage(vpn * m.pageBytes);
    });
    std::unique_ptr<DynamicRecolorer> recolorer;
    if (config.dynamicRecolor) {
        recolorer = std::make_unique<DynamicRecolorer>(vm, phys, mem,
                                                       config.recolor);
        mem.setConflictObserver(
            [&](CpuId cpu, PageNum vpn, Cycles now) {
                return recolorer->onConflictMiss(cpu, vpn, now);
            });
    }
    // Lockstep differential verification and cadence auditing: both
    // observe the optimized path without changing any result it
    // produces, so they can ride along under any policy/workload.
    std::unique_ptr<verify::DifferentialVerifier> verifier;
    if (config.verifyEvery) {
        verifier = std::make_unique<verify::DifferentialVerifier>(
            m, mem, vm, config.verifyEvery);
        mem.setMemObserver(verifier.get());
    }
    if (config.auditEvery)
        mem.setAuditEvery(config.auditEvery);
    // Conflict attribution: entities are the program's arrays, the
    // same segments harness/attribution resolves owners against.
    std::unique_ptr<obs::ConflictProfiler> profiler;
    if (config.profile) {
        obs::ConflictProfiler::Config pc;
        pc.numCpus = m.numCpus;
        pc.numColors = static_cast<std::uint32_t>(m.numColors());
        pc.pageBytes = m.pageBytes;
        pc.lineBytes = m.l2.lineBytes;
        pc.colorCapacityBytes = m.l2.sizeBytes / m.numColors();
        pc.index = m.indexFunction();
        for (const ArrayDecl &a : program.arrays)
            pc.entities.push_back({a.name, a.base, a.sizeBytes()});
        profiler = std::make_unique<obs::ConflictProfiler>(pc);
        mem.setConflictProfiler(profiler.get());
    }
    MpSimulator sim(m, mem);
    SimOptions simopts = config.sim;
    if (simopts.statsInterval && !simopts.snapshots)
        simopts.snapshots = &res.snapshots;
    simopts.profiler = profiler.get();
    {
        obs::SimSpan sim_span("simulate");
        res.totals = sim.run(program, simopts);
    }
    if (profiler) {
        res.profile = profiler->result(mem.colorOccupancy());
        res.profile.classifiedConflicts =
            mem.totalStats().missCount[static_cast<std::size_t>(
                MissKind::Conflict)];
    }
    if (recolorer)
        res.recolorStats = recolorer->stats();
    if (verifier) {
        res.verifiedRefs = verifier->stats().refsChecked;
        res.verifiedDeepCompares = verifier->stats().deepCompares;
    }
    res.auditsRun = mem.auditsRun();
    CDPC_METRIC_COUNT("harness.experiments", 1);

    res.workload = program.name;
    res.policy = mappingName(config.mapping);
    res.ncpus = m.numCpus;
    res.dataSetBytes = program.dataSetBytes();
    res.degradation = vm.stats();
    res.pressurePages = pressure.claimedPages;
    const VmStats &vs = res.degradation;
    std::uint64_t expressed =
        vs.hintHonored + vs.hintFallback + vs.hintDenied;
    res.hintsHonored = safeDiv(static_cast<double>(vs.hintHonored),
                               static_cast<double>(expressed), 1.0);
    return res;
}

ExperimentResult
runWorkload(const std::string &name, const ExperimentConfig &config)
{
    return runProgram(buildWorkload(name), config);
}

} // namespace cdpc
