#include "harness/attribution.h"

#include <cstdio>
#include <memory>

#include "common/logging.h"
#include "machine/simulator.h"
#include "machine/tracefile.h"
#include "mem/memsystem.h"
#include "vm/hints.h"
#include "vm/physmem.h"
#include "vm/policy.h"
#include "vm/virtual_memory.h"

namespace cdpc
{

namespace
{

/** The OS-side objects one experiment needs, built consistently. */
struct OsStack
{
    OsStack(const MachineConfig &m, const ExperimentConfig &config)
        : phys(m.physPages, m.indexFunction()),
          coloring(m.numColors()),
          binhop(m.numColors(), config.binHopRacy, config.seed),
          random(m.numColors(), config.seed), hash(m.numColors()),
          hints(pickBase(config))
    {
        active = config.mapping == MappingPolicy::Cdpc
                     ? static_cast<PageMappingPolicy *>(&hints)
                     : &pickBase(config);
        vm = std::make_unique<VirtualMemory>(m, phys, *active);
    }

    PageMappingPolicy &
    pickBase(const ExperimentConfig &config)
    {
        switch (config.mapping) {
          case MappingPolicy::PageColoring:
          case MappingPolicy::Cdpc:
            return coloring;
          case MappingPolicy::BinHopping:
          case MappingPolicy::CdpcTouchOrder:
            return binhop;
          case MappingPolicy::Random:
            return random;
          case MappingPolicy::Hash:
            return hash;
        }
        panic("unhandled mapping policy");
    }

    PhysMem phys;
    PageColoringPolicy coloring;
    BinHoppingPolicy binhop;
    RandomPolicy random;
    HashPolicy hash;
    CdpcHintPolicy hints;
    PageMappingPolicy *active = nullptr;
    std::unique_ptr<VirtualMemory> vm;
};

void
setupCdpc(const Program &program, const ExperimentConfig &config,
          const MachineConfig &m, const CompileResult &compiled,
          OsStack &os)
{
    if (config.mapping != MappingPolicy::Cdpc &&
        config.mapping != MappingPolicy::CdpcTouchOrder) {
        return;
    }
    (void)program;
    CdpcPlan plan = computeCdpcPlan(compiled.summaries, cdpcParams(m),
                                    config.cdpcOptions);
    if (config.mapping == MappingPolicy::Cdpc)
        applyHints(plan, os.hints);
    else
        applyByTouchOrder(plan, *os.vm);
}

} // namespace

AttributionResult
attributeMisses(const std::string &workload,
                const ExperimentConfig &config)
{
    const MachineConfig &m = config.machine;
    m.validate();

    // Compile once; both the recording and the replaying stack see
    // the same addresses.
    Program program = buildWorkload(workload);
    CompilerOptions copts;
    copts.align = config.aligned;
    copts.aligner.lineBytes = m.l2.lineBytes;
    copts.aligner.l1SpanBytes = m.l1d.sizeBytes / m.l1d.assoc;
    CompileResult compiled = compileProgram(program, copts);

    std::string path =
        std::string("/tmp/cdpc_attr_") + std::to_string(::getpid()) +
        "_" + workload + ".trc";

    // Pass 1: record the demand stream.
    {
        OsStack os(m, config);
        setupCdpc(program, config, m, compiled, os);
        MemorySystem mem(m, *os.vm);
        MpSimulator sim(m, mem);
        TraceWriter writer(path, m.numCpus);
        SimOptions opts = config.sim;
        opts.record = &writer;
        sim.run(program, opts);
    }

    // Pass 2: replay with per-record attribution.
    AttributionResult res;
    res.arrays.reserve(program.arrays.size());
    for (const ArrayDecl &a : program.arrays) {
        ArrayAttribution att;
        att.name = a.name;
        att.sizeBytes = a.sizeBytes();
        res.arrays.push_back(att);
    }
    res.other.name = "(other)";

    auto owner = [&](VAddr va) -> ArrayAttribution & {
        for (std::size_t i = 0; i < program.arrays.size(); i++) {
            const ArrayDecl &a = program.arrays[i];
            if (va >= a.base && va < a.endAddr())
                return res.arrays[i];
        }
        return res.other;
    };

    {
        OsStack os(m, config);
        setupCdpc(program, config, m, compiled, os);
        MemorySystem mem(m, *os.vm);
        TraceReader reader(path);
        std::vector<Cycles> clk(m.numCpus, 0);
        TraceRecord rec;
        while (reader.next(rec)) {
            Cycles &c = clk[rec.cpu];
            c += rec.insts;
            MemAccess a;
            a.va = rec.va;
            a.kind = rec.isIfetch()
                         ? AccessKind::Ifetch
                         : rec.isWrite() ? AccessKind::Store
                                         : AccessKind::Load;
            a.wordMask = rec.wordMask;
            AccessOutcome out = mem.access(rec.cpu, a, c);
            c += out.stall;

            ArrayAttribution &att = owner(rec.va);
            att.refs++;
            if (out.l2Miss) {
                att.l2Misses++;
                att.missCount[static_cast<int>(out.missKind)]++;
            }
        }
    }
    std::remove(path.c_str());
    return res;
}

} // namespace cdpc
