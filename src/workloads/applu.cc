/**
 * @file
 * 110.applu — SSOR solver for coupled parabolic/elliptic PDEs.
 *
 * Three paper-relevant pathologies are encoded:
 *
 *  1. "the parallelized loops of applu consist of only 33
 *     iterations. As a result, 16 processors do not execute such
 *     loops more efficiently than 11" (Section 4.1) — the parallel
 *     dimension has extent 33 with blocked ceil(N/p) partitions.
 *
 *  2. capacity-dominated behaviour: the 3.9MB (scaled) data set
 *     exceeds even 16 CPUs' aggregate 1MB-class caches, so CDPC has
 *     nothing to win at the base cache size but gains at the 4MB
 *     configuration (Figure 7).
 *
 *  3. prefetching is ineffective: the loop tiling introduced during
 *     parallelization inhibits software pipelining
 *     (prefetchPipelineInhibited) and the wavefront sweep's
 *     plane-sized strides step across pages faster than the TLB can
 *     track, so prefetches are dropped (Section 6.2).
 *
 * Data set: 5 arrays of 33 x 54 x 54 doubles = 3.9MB ~ 31MB / 8.
 */

#include "workloads/builder.h"
#include "workloads/workload.h"

namespace cdpc
{

Program
buildApplu()
{
    constexpr std::uint64_t ni = 33;
    constexpr std::uint64_t nj = 54;
    constexpr std::uint64_t nk = 54;
    ProgramBuilder b("110.applu");

    std::uint32_t u = b.array3d("u", ni, nj, nk);
    std::uint32_t rsd = b.array3d("rsd", ni, nj, nk);
    std::uint32_t frct = b.array3d("frct", ni, nj, nk);
    std::uint32_t a = b.array3d("a", ni, nj, nk);
    std::uint32_t c = b.array3d("c", ni, nj, nk);

    for (std::uint32_t arr : {u, rsd, frct, a, c})
        b.initNest(sequentialInit1d(b, arr, ni * nj * nk));

    Phase ssor;
    ssor.name = "ssor-sweep";
    ssor.occurrences = 25;

    // RHS computation: parallel over the 33-extent dimension with
    // blocked partitions (ceil(33/p) each).
    {
        LoopNest nest;
        nest.label = "rhs";
        nest.kind = NestKind::Parallel;
        nest.parallelDim = 0;
        nest.partition.policy = PartitionPolicy::Blocked;
        nest.prefetchPipelineInhibited = true;
        nest.bounds = {ni - 2, nj - 2, nk - 2};
        nest.instsPerIter = 60;
        nest.refs = {
            b.at3(u, 0, 1, 2, 0, 0, 0), b.at3(u, 0, 1, 2, -1, 0, 0),
            b.at3(u, 0, 1, 2, 1, 0, 0), b.at3(u, 0, 1, 2, 0, -1, 0),
            b.at3(frct, 0, 1, 2, 0, 0, 0),
            b.at3(rsd, 0, 1, 2, 0, 0, 0, true),
        };
        ssor.nests.push_back(nest);
    }

    // Lower-triangular wavefront (tiled). The tiling inhibits
    // software pipelining of the prefetches, and the middle loop
    // walks the j dimension with plane-crossing strides on the
    // block-diagonal matrix — strides large enough that prefetches
    // regularly target pages absent from the TLB.
    {
        LoopNest nest;
        nest.label = "blts-wavefront";
        nest.kind = NestKind::Parallel;
        nest.parallelDim = 0;
        nest.partition.policy = PartitionPolicy::Blocked;
        nest.prefetchPipelineInhibited = true;
        // Loop dims: (i, j, k). The state arrays sweep plane-local
        // and unit-stride; the block-diagonal matrix is walked
        // transposed (row index k, inner stride one plane row =
        // 432B), which is what makes its prefetches cross pages
        // faster than the TLB tracks.
        nest.bounds = {ni - 2, nj - 2, nk - 2};
        nest.instsPerIter = 72;
        nest.refs = {
            b.at3(a, 0, 2, 1, 0, 0, 0),
            b.at3(rsd, 0, 1, 2, 0, 0, 0),
            b.at3(rsd, 0, 1, 2, -1, 0, 0),
            b.at3(u, 0, 1, 2, 0, 0, 0, true),
        };
        ssor.nests.push_back(nest);
    }

    // Upper-triangular wavefront, reverse partition.
    {
        LoopNest nest;
        nest.label = "buts-wavefront";
        nest.kind = NestKind::Parallel;
        nest.parallelDim = 0;
        nest.partition.policy = PartitionPolicy::Blocked;
        // The sweep runs backward in time, but the static schedule
        // keeps each plane on the CPU that owns it (SUIF schedules
        // for affinity), so the data partition stays forward.
        nest.prefetchPipelineInhibited = true;
        nest.bounds = {ni - 2, nj - 2, nk - 2};
        nest.instsPerIter = 72;
        nest.refs = {
            b.at3(c, 0, 2, 1, 0, 0, 0),
            b.at3(u, 0, 1, 2, 0, 0, 0),
            b.at3(u, 0, 1, 2, 1, 0, 0),
            b.at3(rsd, 0, 1, 2, 0, 0, 0, true),
        };
        ssor.nests.push_back(nest);
    }

    // Solution update over the 33-iteration dimension.
    {
        LoopNest nest;
        nest.label = "update";
        nest.kind = NestKind::Parallel;
        nest.parallelDim = 0;
        nest.partition.policy = PartitionPolicy::Blocked;
        nest.prefetchPipelineInhibited = true;
        nest.bounds = {ni, nj, nk};
        nest.instsPerIter = 24;
        nest.refs = {
            b.at3(rsd, 0, 1, 2, 0, 0, 0),
            b.at3(u, 0, 1, 2, 0, 0, 0, true),
        };
        ssor.nests.push_back(nest);
    }

    b.phase(ssor);
    return b.build();
}

} // namespace cdpc
