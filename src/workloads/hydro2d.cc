/**
 * @file
 * 104.hydro2d — Navier-Stokes galactic-jet hydrodynamics.
 *
 * Modeled as eight N x N state/flux arrays swept by directional
 * stencil passes (x-sweep then y-sweep, the alternating-direction
 * structure of the original), parallelized over rows. 130 x 128
 * arrays give 8 * 130 * 128 * 8B = 1.06MB, the paper's 8MB at 1/8
 * scale — the data set fits the aggregate cache from 8 CPUs on,
 * which is where the paper sees CDPC's large hydro2d wins on the
 * 1MB configuration. Each array is 260 pages (four over two cache
 * spans), so the per-CPU chunks nearly alias under page coloring.
 */

#include "workloads/builder.h"
#include "workloads/workload.h"

namespace cdpc
{

Program
buildHydro2d()
{
    constexpr std::uint64_t rows = 130;
    constexpr std::uint64_t cols = 128;
    ProgramBuilder b("104.hydro2d");

    std::uint32_t ro = b.array2d("ro", rows, cols);
    std::uint32_t en = b.array2d("en", rows, cols);
    std::uint32_t mu = b.array2d("mu", rows, cols);
    std::uint32_t mv = b.array2d("mv", rows, cols);
    std::uint32_t fro = b.array2d("fro", rows, cols);
    std::uint32_t fen = b.array2d("fen", rows, cols);
    std::uint32_t fmu = b.array2d("fmu", rows, cols);
    std::uint32_t fmv = b.array2d("fmv", rows, cols);

    // One initialization loop touches the state and flux arrays
    // together, so bin hopping interleaves all eight arrays' pages.
    b.initNest(interleavedInit2d(b, {ro, en, mu, mv, fro, fen, fmu, fmv},
                                 rows, cols));

    Phase step;
    step.name = "hydro-step";
    step.occurrences = 80;

    // X-sweep: fluxes from the state, stencil along j.
    {
        LoopNest nest;
        nest.label = "x-flux";
        nest.kind = NestKind::Parallel;
        nest.parallelDim = 0;
        nest.bounds = {rows - 2, cols - 2};
        nest.instsPerIter = 45;
        nest.refs = {
            b.at2(ro, 0, 1, 0, -1), b.at2(ro, 0, 1, 0, 1),
            b.at2(en, 0, 1, 0, 0), b.at2(mu, 0, 1, 0, 0),
            b.at2(mv, 0, 1, 0, 0),
            b.at2(fro, 0, 1, 0, 0, true), b.at2(fen, 0, 1, 0, 0, true),
            b.at2(fmu, 0, 1, 0, 0, true),
            b.at2(fmv, 0, 1, 0, 0, true),
        };
        step.nests.push_back(nest);
    }

    // Y-sweep: stencil along i — the i±1 offsets cross the row
    // partition boundaries (shift communication).
    {
        LoopNest nest;
        nest.label = "y-flux";
        nest.kind = NestKind::Parallel;
        nest.parallelDim = 0;
        nest.bounds = {rows - 2, cols - 2};
        nest.instsPerIter = 45;
        nest.refs = {
            b.at2(fro, 0, 1, -1, 0), b.at2(fro, 0, 1, 1, 0),
            b.at2(fen, 0, 1, 0, 0), b.at2(fmu, 0, 1, 0, 0),
            b.at2(fmv, 0, 1, 0, 0),
            b.at2(ro, 0, 1, 0, 0, true), b.at2(en, 0, 1, 0, 0, true),
            b.at2(mu, 0, 1, 0, 0, true), b.at2(mv, 0, 1, 0, 0, true),
        };
        step.nests.push_back(nest);
    }

    // State update: advance all conserved quantities.
    {
        LoopNest nest;
        nest.label = "advance";
        nest.kind = NestKind::Parallel;
        nest.parallelDim = 0;
        nest.bounds = {rows, cols};
        nest.instsPerIter = 30;
        nest.refs = {
            b.at2(fro, 0, 1), b.at2(fen, 0, 1), b.at2(fmu, 0, 1),
            b.at2(fmv, 0, 1),
            b.at2(ro, 0, 1, 0, 0, true), b.at2(en, 0, 1, 0, 0, true),
            b.at2(mu, 0, 1, 0, 0, true), b.at2(mv, 0, 1, 0, 0, true),
        };
        step.nests.push_back(nest);
    }

    b.phase(step);
    return b.build();
}

} // namespace cdpc
