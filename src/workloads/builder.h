/**
 * @file
 * A small construction DSL for the synthetic SPEC95fp stand-ins.
 *
 * Each workload file builds a Program: arrays with the scaled
 * data-set sizes of Table 1, an init phase encoding the first-touch
 * order, and steady-state phases of loop nests whose partitioning,
 * strides and stencil offsets reproduce the paper-relevant access
 * structure of the original benchmark.
 */

#ifndef CDPC_WORKLOADS_BUILDER_H
#define CDPC_WORKLOADS_BUILDER_H

#include <cstdint>
#include <string>

#include "ir/program.h"

namespace cdpc
{

/** Fluent helper around a Program under construction. */
class ProgramBuilder
{
  public:
    explicit ProgramBuilder(std::string name)
    {
        prog.name = std::move(name);
    }

    /** Declare a 1-D array of @p n elements. */
    std::uint32_t
    array1d(const std::string &name, std::uint64_t n,
            std::uint32_t elem_bytes = 8)
    {
        ArrayDecl a;
        a.name = name;
        a.elemBytes = elem_bytes;
        a.dims = {n};
        prog.arrays.push_back(a);
        return static_cast<std::uint32_t>(prog.arrays.size() - 1);
    }

    /** Declare a 2-D (rows x cols) row-major array. */
    std::uint32_t
    array2d(const std::string &name, std::uint64_t rows,
            std::uint64_t cols, std::uint32_t elem_bytes = 8)
    {
        ArrayDecl a;
        a.name = name;
        a.elemBytes = elem_bytes;
        a.dims = {rows, cols};
        prog.arrays.push_back(a);
        return static_cast<std::uint32_t>(prog.arrays.size() - 1);
    }

    /** Declare a 3-D array. */
    std::uint32_t
    array3d(const std::string &name, std::uint64_t d0, std::uint64_t d1,
            std::uint64_t d2, std::uint32_t elem_bytes = 8)
    {
        ArrayDecl a;
        a.name = name;
        a.elemBytes = elem_bytes;
        a.dims = {d0, d1, d2};
        prog.arrays.push_back(a);
        return static_cast<std::uint32_t>(prog.arrays.size() - 1);
    }

    /** Mark an array as carrying accesses the compiler cannot analyze. */
    void
    markUnanalyzable(std::uint32_t id)
    {
        prog.arrays.at(id).summarizable = false;
    }

    /**
     * 2-D reference a[i + di][j + dj] where loop dim @p i_dim drives
     * the row index and @p j_dim the column index.
     */
    AffineRef
    at2(std::uint32_t arr, std::uint32_t i_dim, std::uint32_t j_dim,
        std::int64_t di = 0, std::int64_t dj = 0,
        bool write = false) const
    {
        const ArrayDecl &a = prog.arrays.at(arr);
        auto row = static_cast<std::int64_t>(a.strideElems(0));
        AffineRef r;
        r.arrayId = arr;
        r.terms = {{i_dim, row}, {j_dim, 1}};
        r.constElems = di * row + dj;
        r.isWrite = write;
        return r;
    }

    /** 3-D reference a[i+di][j+dj][k+dk]. */
    AffineRef
    at3(std::uint32_t arr, std::uint32_t i_dim, std::uint32_t j_dim,
        std::uint32_t k_dim, std::int64_t di = 0, std::int64_t dj = 0,
        std::int64_t dk = 0, bool write = false) const
    {
        const ArrayDecl &a = prog.arrays.at(arr);
        auto s0 = static_cast<std::int64_t>(a.strideElems(0));
        auto s1 = static_cast<std::int64_t>(a.strideElems(1));
        AffineRef r;
        r.arrayId = arr;
        r.terms = {{i_dim, s0}, {j_dim, s1}, {k_dim, 1}};
        r.constElems = di * s0 + dj * s1 + dk;
        r.isWrite = write;
        return r;
    }

    /** 1-D reference a[c * iv + d]. */
    AffineRef
    at1(std::uint32_t arr, std::uint32_t iv_dim, std::int64_t coeff = 1,
        std::int64_t d = 0, bool write = false) const
    {
        AffineRef r;
        r.arrayId = arr;
        r.terms = {{iv_dim, coeff}};
        r.constElems = d;
        r.isWrite = write;
        return r;
    }

    /**
     * 1-D reference with a wrapped (mod array size) index — the
     * non-contiguous access pattern the compiler cannot summarize.
     */
    AffineRef
    gather1(std::uint32_t arr, std::uint32_t iv_dim,
            std::int64_t stride_elems, bool write = false) const
    {
        AffineRef r = at1(arr, iv_dim, stride_elems, 0, write);
        r.wrapModElems =
            static_cast<std::int64_t>(prog.arrays.at(arr).elements());
        return r;
    }

    /** Append a nest to the init phase. */
    void
    initNest(LoopNest nest)
    {
        prog.init.nests.push_back(std::move(nest));
    }

    /** Append a phase to the steady state. */
    void
    phase(Phase p)
    {
        prog.steady.push_back(std::move(p));
    }

    Program &
    program()
    {
        return prog;
    }

    /** Finish: name the init phase, validate, hand out the Program. */
    Program
    build()
    {
        prog.init.name = "init";
        prog.validate();
        return std::move(prog);
    }

  private:
    Program prog;
};

/**
 * Convenience: a sequential init nest that touches a set of 2-D
 * arrays interleaved (a[i][j], b[i][j], ... in one loop body) —
 * FORTRAN-style initialization whose fault order interleaves the
 * arrays' pages, which is what differentiates bin hopping from page
 * coloring.
 */
LoopNest interleavedInit2d(const ProgramBuilder &b,
                           const std::vector<std::uint32_t> &arrays,
                           std::uint64_t rows, std::uint64_t cols);

/** A sequential init nest touching one array after another. */
LoopNest sequentialInit1d(const ProgramBuilder &b, std::uint32_t array,
                          std::uint64_t elems);

} // namespace cdpc

#endif // CDPC_WORKLOADS_BUILDER_H
