/**
 * @file
 * The workload registry: the ten SPEC95fp benchmarks as synthetic
 * stand-ins (see DESIGN.md's substitution table).
 *
 * Each entry records the paper's Table 1 data-set size, the SPEC95
 * reference time used to compute SPEC ratios, and a builder that
 * produces the benchmark's IR Program at the 1/8 model scale.
 */

#ifndef CDPC_WORKLOADS_WORKLOAD_H
#define CDPC_WORKLOADS_WORKLOAD_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ir/program.h"

namespace cdpc
{

/** Registry entry for one benchmark. */
struct WorkloadInfo
{
    /** SPEC-style name, e.g. "101.tomcatv". */
    std::string name;
    /** Reference data-set size from the paper's Table 1 (MB). */
    std::uint32_t paperDataSetMB;
    /** SPEC95 reference time (seconds on a SparcStation 10). */
    double specRefSeconds;
    /** Builds the scaled IR program. */
    std::function<Program()> build;
    /** One-line description of the modeled structure. */
    std::string description;
};

/** All ten benchmarks, in SPEC order. */
const std::vector<WorkloadInfo> &allWorkloads();

/** Find one by (suffix-insensitive) name; fatal() when unknown. */
const WorkloadInfo &findWorkload(const std::string &name);

/** Build one by name. */
Program buildWorkload(const std::string &name);

// Individual builders (exposed for tests and examples).
Program buildTomcatv();
Program buildSwim();
Program buildSu2cor();
Program buildHydro2d();
Program buildMgrid();
Program buildApplu();
Program buildTurb3d();
Program buildApsi();
Program buildFpppp();
Program buildWave5();

} // namespace cdpc

#endif // CDPC_WORKLOADS_WORKLOAD_H
