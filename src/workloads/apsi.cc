/**
 * @file
 * 141.apsi — mesoscale pollutant-transport weather code.
 *
 * The paper's apsi barely benefits from parallelization: "apsi and
 * wave5 have fine-grain loop-level parallelism that is suppressed
 * since it cannot be exploited effectively" (Section 4.1), and CDPC
 * has no effect on it (Figure 6 omits it). We model apsi as many
 * small parallelizable nests — each below the parallelizer's
 * suppression threshold, so they run on the master — plus genuinely
 * sequential bookkeeping, over eight 136 x 136 arrays (1.2MB ~ the
 * paper's 9MB / 8).
 */

#include "workloads/builder.h"
#include "workloads/workload.h"

namespace cdpc
{

Program
buildApsi()
{
    constexpr std::uint64_t n = 136;
    ProgramBuilder b("141.apsi");

    std::vector<std::uint32_t> fields;
    const char *names[] = {"um", "vm", "wm", "tm", "qm", "pm", "dkh",
                           "dkm"};
    for (const char *nm : names)
        fields.push_back(b.array2d(nm, n, n));

    b.initNest(interleavedInit2d(b, fields, n, n));

    Phase step;
    step.name = "apsi-step";
    step.occurrences = 50;

    // Many narrow column-sweep loops: parallelizable on paper but
    // each only ~30k instructions, below the suppression threshold —
    // the fine-grain parallelism the compiler declines to exploit.
    for (std::size_t f = 0; f + 1 < fields.size(); f++) {
        LoopNest nest;
        nest.label = std::string("column-sweep-") + names[f];
        nest.kind = NestKind::Parallel; // suppressed by the pass
        nest.parallelDim = 0;
        nest.bounds = {n, 12};
        nest.instsPerIter = 18;
        nest.refs = {
            b.at2(fields[f], 0, 1, 0, 0),
            b.at2(fields[f + 1], 0, 1, 0, 0, true),
        };
        step.nests.push_back(nest);
    }

    // Sequential physics driver the compiler could not parallelize.
    {
        LoopNest nest;
        nest.label = "physics-seq";
        nest.kind = NestKind::Sequential;
        nest.bounds = {n / 2, n / 2};
        nest.instsPerIter = 42;
        nest.refs = {
            b.at2(fields[0], 0, 1), b.at2(fields[3], 0, 1),
            b.at2(fields[5], 0, 1, 0, 0, true),
        };
        step.nests.push_back(nest);
    }

    // One coarse nest that does survive parallelization.
    {
        LoopNest nest;
        nest.label = "advection";
        nest.kind = NestKind::Parallel;
        nest.parallelDim = 0;
        nest.bounds = {n, n};
        nest.instsPerIter = 48;
        nest.refs = {
            b.at2(fields[0], 0, 1), b.at2(fields[1], 0, 1),
            b.at2(fields[2], 0, 1, 0, 0, true),
        };
        step.nests.push_back(nest);
    }

    b.phase(step);
    return b.build();
}

} // namespace cdpc
