/**
 * @file
 * 102.swim — shallow water equations on an N x N grid.
 *
 * The original uses thirteen 513 x 513 arrays in three stencil
 * kernels (CALC1/CALC2/CALC3) plus a periodic-boundary copy. We keep
 * thirteen arrays at 130 x 128 — each 260 pages, four pages over an
 * exact multiple of the scaled external cache — so under page
 * coloring the thirteen arrays' per-CPU chunks pile onto nearly the
 * same colors. This is why swim is the paper's most
 * page-coloring-hostile benchmark (2.6x worse than CDPC at 8 CPUs,
 * Section 7).
 *
 * Data set: 13 * 130 * 128 * 8B = 1.73MB ~ the paper's 14MB / 8.
 */

#include "workloads/builder.h"
#include "workloads/workload.h"

namespace cdpc
{

Program
buildSwim()
{
    constexpr std::uint64_t rows = 130;
    constexpr std::uint64_t cols = 128;
    ProgramBuilder b("102.swim");

    std::uint32_t u = b.array2d("u", rows, cols);
    std::uint32_t v = b.array2d("v", rows, cols);
    std::uint32_t p = b.array2d("p", rows, cols);
    std::uint32_t unew = b.array2d("unew", rows, cols);
    std::uint32_t vnew = b.array2d("vnew", rows, cols);
    std::uint32_t pnew = b.array2d("pnew", rows, cols);
    std::uint32_t uold = b.array2d("uold", rows, cols);
    std::uint32_t vold = b.array2d("vold", rows, cols);
    std::uint32_t pold = b.array2d("pold", rows, cols);
    std::uint32_t cu = b.array2d("cu", rows, cols);
    std::uint32_t cv = b.array2d("cv", rows, cols);
    std::uint32_t z = b.array2d("z", rows, cols);
    std::uint32_t h = b.array2d("h", rows, cols);

    // swim's INITAL sets u/v/p together, then copies into the
    // old/new generations.
    b.initNest(interleavedInit2d(b, {u, v, p}, rows, cols));
    b.initNest(interleavedInit2d(b, {uold, vold, pold}, rows, cols));
    b.initNest(interleavedInit2d(b, {unew, vnew, pnew}, rows, cols));
    b.initNest(interleavedInit2d(b, {cu, cv, z, h}, rows, cols));

    Phase step;
    step.name = "time-step";
    step.occurrences = 120;

    // CALC1: cu, cv, z, h from u, v, p (i+1 / j+1 stencils).
    {
        LoopNest nest;
        nest.label = "calc1";
        nest.kind = NestKind::Parallel;
        nest.parallelDim = 0;
        nest.bounds = {rows - 1, cols - 1};
        nest.instsPerIter = 42;
        nest.refs = {
            b.at2(u, 0, 1, 0, 0), b.at2(u, 0, 1, 1, 0),
            b.at2(v, 0, 1, 0, 0), b.at2(v, 0, 1, 0, 1),
            b.at2(p, 0, 1, 0, 0), b.at2(p, 0, 1, 1, 0),
            b.at2(p, 0, 1, 0, 1),
            b.at2(cu, 0, 1, 0, 0, true), b.at2(cv, 0, 1, 0, 0, true),
            b.at2(z, 0, 1, 0, 0, true), b.at2(h, 0, 1, 0, 0, true),
        };
        step.nests.push_back(nest);
    }

    // CALC2: new generation from old + fluxes (i-1 / j-1 stencils).
    {
        LoopNest nest;
        nest.label = "calc2";
        nest.kind = NestKind::Parallel;
        nest.parallelDim = 0;
        nest.bounds = {rows - 1, cols - 1};
        nest.instsPerIter = 48;
        nest.refs = {
            b.at2(uold, 0, 1), b.at2(vold, 0, 1), b.at2(pold, 0, 1),
            b.at2(cu, 0, 1, 0, 0), b.at2(cu, 0, 1, -1, 0),
            b.at2(cv, 0, 1, 0, 0), b.at2(cv, 0, 1, 0, -1),
            b.at2(z, 0, 1, 0, 0), b.at2(h, 0, 1, 0, 0),
            b.at2(unew, 0, 1, 0, 0, true),
            b.at2(vnew, 0, 1, 0, 0, true),
            b.at2(pnew, 0, 1, 0, 0, true),
        };
        step.nests.push_back(nest);
    }

    // CALC3: time smoothing — writes the old generation, shifts the
    // new into current.
    {
        LoopNest nest;
        nest.label = "calc3";
        nest.kind = NestKind::Parallel;
        nest.parallelDim = 0;
        nest.bounds = {rows, cols};
        nest.instsPerIter = 36;
        nest.refs = {
            b.at2(u, 0, 1), b.at2(v, 0, 1), b.at2(p, 0, 1),
            b.at2(unew, 0, 1), b.at2(vnew, 0, 1), b.at2(pnew, 0, 1),
            b.at2(uold, 0, 1, 0, 0, true),
            b.at2(vold, 0, 1, 0, 0, true),
            b.at2(pold, 0, 1, 0, 0, true),
            b.at2(u, 0, 1, 0, 0, true), b.at2(v, 0, 1, 0, 0, true),
            b.at2(p, 0, 1, 0, 0, true),
        };
        step.nests.push_back(nest);
    }

    b.phase(step);
    Program prog = b.build();
    // swim's grids are periodic: the boundary-copy loops exchange
    // the wrap-around rows/columns, which the affine analysis cannot
    // see — declare the rotate communication explicitly.
    for (std::uint32_t arr : {u, v, p})
        prog.declaredComms.push_back(DeclaredComm{arr, true, 1});
    return prog;
}

} // namespace cdpc
