#include "workloads/workload.h"

#include "common/logging.h"

namespace cdpc
{

const std::vector<WorkloadInfo> &
allWorkloads()
{
    // SPEC95 reference times are the published SparcStation 10/40
    // reference seconds used to form SPECratios.
    static const std::vector<WorkloadInfo> registry = {
        {"101.tomcatv", 14, 3700.0, buildTomcatv,
         "mesh generation; 7 large arrays, row-partitioned stencils"},
        {"102.swim", 14, 8600.0, buildSwim,
         "shallow water; 13 cache-sized arrays, worst case for "
         "page coloring"},
        {"103.su2cor", 23, 1400.0, buildSu2cor,
         "lattice QCD; partitioned gauge fields + unanalyzable "
         "propagators"},
        {"104.hydro2d", 8, 2400.0, buildHydro2d,
         "Navier-Stokes; 8 arrays, alternating-direction stencils"},
        {"107.mgrid", 7, 2500.0, buildMgrid,
         "3-D multigrid; strong locality, small replacement misses"},
        {"110.applu", 31, 2200.0, buildApplu,
         "SSOR; 33-iteration parallel loops, capacity-bound, "
         "prefetch-hostile wavefronts"},
        {"125.turb3d", 24, 4100.0, buildTurb3d,
         "turbulence FFTs; 4 phases occurring 11/66/100/120 times"},
        {"141.apsi", 9, 2100.0, buildApsi,
         "weather; fine-grain parallelism suppressed"},
        {"145.fpppp", 1, 9600.0, buildFpppp,
         "quantum chemistry; sequential, instruction-stream bound"},
        {"146.wave5", 40, 3000.0, buildWave5,
         "particle-in-cell plasma; suppressed gather/scatter push"},
    };
    return registry;
}

const WorkloadInfo &
findWorkload(const std::string &name)
{
    for (const WorkloadInfo &w : allWorkloads()) {
        if (w.name == name)
            return w;
        // Accept the bare name without the SPEC number prefix.
        auto dot = w.name.find('.');
        if (dot != std::string::npos && w.name.substr(dot + 1) == name)
            return w;
    }
    fatal("unknown workload: ", name);
}

Program
buildWorkload(const std::string &name)
{
    return findWorkload(name).build();
}

} // namespace cdpc
