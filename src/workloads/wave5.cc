/**
 * @file
 * 146.wave5 — 2-D particle-in-cell plasma simulation.
 *
 * The largest data set of the suite (40MB, scaled to 5MB) and the
 * paper's second no-speedup case: its particle push has fine-grain,
 * gather/scatter parallelism that the compiler suppresses, and it
 * was the one benchmark whose phases showed real variation ("One of
 * the phases of wave5 showed ... a 30% variation in cache misses",
 * Section 3.3) — which gathers through particle arrays naturally
 * produce. Field solves are parallel and well-partitioned; the
 * particle phase dominates, so page mapping policy barely matters
 * (Figure 9 shows little variance for wave5).
 */

#include "workloads/builder.h"
#include "workloads/workload.h"

namespace cdpc
{

Program
buildWave5()
{
    constexpr std::uint64_t n = 256;               // field grids
    constexpr std::uint64_t np = 192 * 1024;       // particles
    ProgramBuilder b("146.wave5");

    std::uint32_t ex = b.array2d("ex", n, n);
    std::uint32_t ey = b.array2d("ey", n, n);
    std::uint32_t rho = b.array2d("rho", n, n);
    std::uint32_t phi = b.array2d("phi", n, n);
    std::uint32_t px = b.array1d("px", np);
    std::uint32_t py = b.array1d("py", np);
    b.markUnanalyzable(px);
    b.markUnanalyzable(py);

    b.initNest(interleavedInit2d(b, {ex, ey, rho, phi}, n, n));
    b.initNest(sequentialInit1d(b, px, np));
    b.initNest(sequentialInit1d(b, py, np));

    // Field solve: a well-partitioned parallel stencil phase.
    Phase field;
    field.name = "field-solve";
    field.occurrences = 30;
    {
        LoopNest nest;
        nest.label = "poisson";
        nest.kind = NestKind::Parallel;
        nest.parallelDim = 0;
        nest.bounds = {n - 2, n - 2};
        nest.instsPerIter = 36;
        nest.refs = {
            b.at2(phi, 0, 1, 0, 0), b.at2(phi, 0, 1, -1, 0),
            b.at2(phi, 0, 1, 1, 0), b.at2(rho, 0, 1, 0, 0),
            b.at2(ex, 0, 1, 0, 0, true), b.at2(ey, 0, 1, 0, 0, true),
        };
        field.nests.push_back(nest);
    }
    b.phase(field);

    // Particle push: fine-grain gather/scatter parallelism that the
    // compiler suppresses — the master walks every particle,
    // gathering field values and scattering charge.
    Phase push;
    push.name = "particle-push";
    push.occurrences = 30;
    {
        LoopNest nest;
        nest.label = "push";
        nest.kind = NestKind::Suppressed;
        nest.bounds = {np / 64, 64};
        nest.instsPerIter = 30;
        nest.refs = {
            b.at1(px, 1, 1, 0, true),
            b.at1(py, 1, 1, 0, true),
            b.gather1(ex, 1, 911),
            b.gather1(rho, 1, 1213, true),
        };
        // Index the particle arrays by both loop dims so the sweep
        // covers all particles, 64 per outer iteration; the field
        // gathers advance by the same combined index so each outer
        // iteration lands on fresh (wrapped) grid locations.
        nest.refs[0].terms.push_back({0, 64});
        nest.refs[1].terms.push_back({0, 64});
        nest.refs[2].terms.push_back({0, 911 * 64});
        nest.refs[3].terms.push_back({0, 1213 * 64});
        push.nests.push_back(nest);
    }
    b.phase(push);

    return b.build();
}

} // namespace cdpc
