/**
 * @file
 * 145.fpppp — two-electron integral derivatives (Gaussian-series
 * quantum chemistry).
 *
 * The paper's outlier: "fpppp has essentially no loop-level
 * parallelism" and is "limited entirely by instruction cache misses
 * fetched from the external cache and puts no load on the shared
 * bus" (Section 4.1). The data set is under 1MB (Table 1). We model
 * it as sequential compute-dense kernels over three small arrays
 * with instruction-stream modeling enabled: the text footprint
 * (24KB scaled) exceeds the on-chip I-cache but lives comfortably
 * in the external cache, so every I-miss is an on-chip stall with
 * no bus traffic — and no page mapping policy changes anything.
 */

#include "workloads/builder.h"
#include "workloads/workload.h"

namespace cdpc
{

Program
buildFpppp()
{
    constexpr std::uint64_t n = 64;
    ProgramBuilder b("145.fpppp");

    std::uint32_t f = b.array2d("fock", n, n);
    std::uint32_t d = b.array2d("dens", n, n);
    std::uint32_t s = b.array2d("scr", n, n);

    b.initNest(interleavedInit2d(b, {f, d, s}, n, n));

    Phase scf;
    scf.name = "scf-iteration";
    scf.occurrences = 40;

    // The giant straight-line integral kernel: enormous basic blocks
    // (hence the huge text footprint), tiny data.
    {
        LoopNest nest;
        nest.label = "twoel";
        nest.kind = NestKind::Sequential;
        nest.bounds = {n, n};
        nest.instsPerIter = 120;
        nest.refs = {
            b.at2(f, 0, 1, 0, 0, true),
            b.at2(d, 0, 1, 0, 0),
        };
        scf.nests.push_back(nest);
    }

    // A second sequential kernel with different control flow.
    {
        LoopNest nest;
        nest.label = "shell-pairs";
        nest.kind = NestKind::Sequential;
        nest.bounds = {n, n};
        nest.instsPerIter = 80;
        nest.refs = {
            b.at2(s, 0, 1, 0, 0, true),
            b.at2(f, 0, 1, 0, 0),
        };
        scf.nests.push_back(nest);
    }

    b.phase(scf);
    Program prog = b.build();
    prog.modelIfetch = true;
    prog.textBytes = 24 * 1024; // > 4KB L1I, < 128KB external cache
    return prog;
}

} // namespace cdpc
