/**
 * @file
 * 101.tomcatv — vectorized mesh generation.
 *
 * Structure modeled from the paper: seven large N x N arrays (the
 * paper notes "tomcatv has seven large data structures"), a steady
 * state that is one phase repeated many times, 5-point stencil
 * sweeps parallelized over rows with even forward partitions, and a
 * reverse-partitioned back-substitution sweep. The i±1 stencil
 * offsets produce the shift communication CDPC's summaries record.
 *
 * Scale: 206 x 160 arrays give 7 * 263,680B = 1.85MB, the paper's
 * 14MB data set at the 1/8 model scale. Each array is 515 pages —
 * three pages over 2x the scaled external cache — so under page
 * coloring the seven arrays' per-CPU chunks land a few colors apart
 * and overlap heavily: the conflict pathology of Figures 3/6, which
 * sharpens as chunks shrink with more CPUs.
 */

#include "workloads/builder.h"
#include "workloads/workload.h"

namespace cdpc
{

Program
buildTomcatv()
{
    constexpr std::uint64_t rows = 206;
    constexpr std::uint64_t cols = 160;
    ProgramBuilder b("101.tomcatv");

    std::uint32_t x = b.array2d("x", rows, cols);
    std::uint32_t y = b.array2d("y", rows, cols);
    std::uint32_t rx = b.array2d("rx", rows, cols);
    std::uint32_t ry = b.array2d("ry", rows, cols);
    std::uint32_t aa = b.array2d("aa", rows, cols);
    std::uint32_t dd = b.array2d("dd", rows, cols);
    std::uint32_t d = b.array2d("d", rows, cols);

    // FORTRAN-style init: the mesh arrays are set together, the
    // solver workspaces in a second loop.
    b.initNest(interleavedInit2d(b, {x, y, rx, ry}, rows, cols));
    b.initNest(interleavedInit2d(b, {aa, dd, d}, rows, cols));

    Phase iter;
    iter.name = "mesh-iteration";
    iter.occurrences = 100;

    // Residual computation: 9-point stencil on x/y writes rx/ry.
    {
        LoopNest nest;
        nest.label = "residual";
        nest.kind = NestKind::Parallel;
        nest.parallelDim = 0;
        nest.bounds = {rows - 2, cols - 2};
        nest.instsPerIter = 54;
        nest.refs = {
            b.at2(x, 0, 1, 0, 0), b.at2(x, 0, 1, -1, 0),
            b.at2(x, 0, 1, 1, 0), b.at2(x, 0, 1, 0, -1),
            b.at2(x, 0, 1, 0, 1), b.at2(y, 0, 1, 0, 0),
            b.at2(y, 0, 1, -1, 0), b.at2(y, 0, 1, 1, 0),
            b.at2(rx, 0, 1, 0, 0, true), b.at2(ry, 0, 1, 0, 0, true),
        };
        iter.nests.push_back(nest);
    }

    // Tridiagonal solve coefficients: reads rx/ry, writes aa/dd/d.
    {
        LoopNest nest;
        nest.label = "solve-coeff";
        nest.kind = NestKind::Parallel;
        nest.parallelDim = 0;
        nest.bounds = {rows - 2, cols - 2};
        nest.instsPerIter = 36;
        nest.refs = {
            b.at2(rx, 0, 1), b.at2(ry, 0, 1),
            b.at2(aa, 0, 1, 0, 0, true), b.at2(dd, 0, 1, 0, 0, true),
            b.at2(d, 0, 1, 0, 0, true),
        };
        iter.nests.push_back(nest);
    }

    // Back substitution: reverse partition (the solver runs bottom
    // row up), still one row per processor chunk.
    {
        LoopNest nest;
        nest.label = "backsub";
        nest.kind = NestKind::Parallel;
        nest.parallelDim = 0;
        // Backward in iteration order, but affinity-scheduled: each
        // CPU keeps its own rows.
        nest.bounds = {rows - 2, cols - 2};
        nest.instsPerIter = 24;
        nest.refs = {
            b.at2(aa, 0, 1), b.at2(dd, 0, 1), b.at2(d, 0, 1),
            b.at2(rx, 0, 1, 0, 0, true), b.at2(ry, 0, 1, 0, 0, true),
        };
        iter.nests.push_back(nest);
    }

    // Mesh update: x += rx, y += ry.
    {
        LoopNest nest;
        nest.label = "update";
        nest.kind = NestKind::Parallel;
        nest.parallelDim = 0;
        nest.bounds = {rows - 2, cols - 2};
        nest.instsPerIter = 20;
        nest.refs = {
            b.at2(rx, 0, 1), b.at2(ry, 0, 1),
            b.at2(x, 0, 1, 0, 0, true), b.at2(y, 0, 1, 0, 0, true),
        };
        iter.nests.push_back(nest);
    }

    b.phase(iter);
    return b.build();
}

} // namespace cdpc
