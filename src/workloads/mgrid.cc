/**
 * @file
 * 107.mgrid — 3-D multigrid Poisson solver.
 *
 * V-cycle structure: smoothing on the fine grids, restriction to
 * the coarse levels, coarse smoothing, prolongation back. Fine-grid
 * arrays u/v/r at 32 x 34 x 32 (272KB each, 32 pages over two cache
 * spans) plus coarse levels give 0.87MB, the paper's 7MB at 1/8
 * scale. The stencils have strong spatial locality and the fine
 * arrays' chunks only alias once they shrink below the inter-array
 * color drift — so replacement misses are comparatively small and
 * the paper sees only slight CDPC improvements above eight
 * processors.
 */

#include "workloads/builder.h"
#include "workloads/workload.h"

namespace cdpc
{

Program
buildMgrid()
{
    constexpr std::uint64_t n = 32;
    ProgramBuilder b("107.mgrid");

    std::uint32_t u = b.array3d("u", n, n + 2, n);
    std::uint32_t v = b.array3d("v", n, n + 2, n);
    std::uint32_t r = b.array3d("r", n, n + 2, n);
    std::uint32_t u2 = b.array3d("u2", n / 2, n / 2, n / 2);
    std::uint32_t r2 = b.array3d("r2", n / 2, n / 2, n / 2);
    std::uint32_t u4 = b.array3d("u4", n / 4, n / 4, n / 4);

    b.initNest(sequentialInit1d(b, u, n * (n + 2) * n));
    b.initNest(sequentialInit1d(b, v, n * (n + 2) * n));
    b.initNest(sequentialInit1d(b, r, n * (n + 2) * n));
    b.initNest(sequentialInit1d(b, u2, (n / 2) * (n / 2) * (n / 2)));
    b.initNest(sequentialInit1d(b, r2, (n / 2) * (n / 2) * (n / 2)));
    b.initNest(sequentialInit1d(b, u4, (n / 4) * (n / 4) * (n / 4)));

    Phase vcycle;
    vcycle.name = "v-cycle";
    vcycle.occurrences = 60;

    // Fine-grid smoothing: 7-point 3-D stencil, parallel over planes.
    {
        LoopNest nest;
        nest.label = "smooth-fine";
        nest.kind = NestKind::Parallel;
        nest.parallelDim = 0;
        nest.bounds = {n - 2, n - 2, n - 2};
        nest.instsPerIter = 66;
        nest.refs = {
            b.at3(u, 0, 1, 2, 0, 0, 0), b.at3(u, 0, 1, 2, -1, 0, 0),
            b.at3(u, 0, 1, 2, 1, 0, 0), b.at3(u, 0, 1, 2, 0, -1, 0),
            b.at3(u, 0, 1, 2, 0, 1, 0), b.at3(r, 0, 1, 2, 0, 0, 0),
            b.at3(v, 0, 1, 2, 0, 0, 0, true),
        };
        vcycle.nests.push_back(nest);
    }

    // Residual: r = f - A v.
    {
        LoopNest nest;
        nest.label = "resid";
        nest.kind = NestKind::Parallel;
        nest.parallelDim = 0;
        nest.bounds = {n - 2, n - 2, n - 2};
        nest.instsPerIter = 54;
        nest.refs = {
            b.at3(v, 0, 1, 2, 0, 0, 0), b.at3(v, 0, 1, 2, -1, 0, 0),
            b.at3(v, 0, 1, 2, 1, 0, 0),
            b.at3(r, 0, 1, 2, 0, 0, 0, true),
        };
        vcycle.nests.push_back(nest);
    }

    // Restriction to the coarse grid (reads fine r, writes r2).
    {
        LoopNest nest;
        nest.label = "restrict";
        nest.kind = NestKind::Parallel;
        nest.parallelDim = 0;
        nest.bounds = {n / 2 - 2, n / 2 - 2, n / 2 - 2};
        nest.instsPerIter = 42;
        // Fine index = 2 * coarse index: coefficient 2 per dim.
        AffineRef fine = b.at3(r, 0, 1, 2, 0, 0, 0);
        for (AffineTerm &t : fine.terms)
            t.coeffElems *= 2;
        nest.refs = {
            fine,
            b.at3(r2, 0, 1, 2, 0, 0, 0, true),
            b.at3(u2, 0, 1, 2, 0, 0, 0, true),
        };
        vcycle.nests.push_back(nest);
    }

    // Coarse-grid smoothing (small, still parallel).
    {
        LoopNest nest;
        nest.label = "smooth-coarse";
        nest.kind = NestKind::Parallel;
        nest.parallelDim = 0;
        nest.bounds = {n / 2 - 2, n / 2 - 2, n / 2 - 2};
        nest.instsPerIter = 66;
        nest.refs = {
            b.at3(u2, 0, 1, 2, 0, 0, 0), b.at3(u2, 0, 1, 2, -1, 0, 0),
            b.at3(u2, 0, 1, 2, 1, 0, 0), b.at3(r2, 0, 1, 2, 0, 0, 0),
            b.at3(u2, 0, 1, 2, 0, 0, 0, true),
        };
        vcycle.nests.push_back(nest);
    }

    // Prolongation: interpolate from the coarsest level outward.
    // Iterate the 8^3 grid; u2 is indexed at 2x, v at 4x.
    {
        LoopNest nest;
        nest.label = "prolong";
        nest.kind = NestKind::Parallel;
        nest.parallelDim = 0;
        nest.bounds = {n / 4 - 2, n / 4 - 2, n / 4 - 2};
        nest.instsPerIter = 36;
        AffineRef mid = b.at3(u2, 0, 1, 2, 0, 0, 0, true);
        for (AffineTerm &t : mid.terms)
            t.coeffElems *= 2;
        AffineRef fine_w = b.at3(v, 0, 1, 2, 0, 0, 0, true);
        for (AffineTerm &t : fine_w.terms)
            t.coeffElems *= 4;
        nest.refs = {
            b.at3(u4, 0, 1, 2, 0, 0, 0),
            mid,
            fine_w,
        };
        vcycle.nests.push_back(nest);
    }

    b.phase(vcycle);
    return b.build();
}

} // namespace cdpc
