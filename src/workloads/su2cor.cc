/**
 * @file
 * 103.su2cor — quark-gluon physics (quenched lattice QCD Monte
 * Carlo).
 *
 * The paper's su2cor is the one benchmark CDPC slightly *degrades*:
 * "each processor does not access contiguous regions of some
 * important data structures. CDPC is only applied to the remaining
 * data structures, but the mapping happens to conflict with the
 * other data structures" (Section 6.1). The model realizes exactly
 * that mechanism:
 *
 *  - two small, hot propagator workspaces and one large lattice
 *    array are accessed through wrapped/indirect index expressions
 *    the compiler cannot summarize, so they keep the OS's native
 *    mapping (they sit at the lowest addresses, i.e. the lowest
 *    colors under page coloring);
 *  - four gauge-field arrays stream with clean row partitions
 *    (analyzable). They carry little temporal reuse, so CDPC has
 *    almost nothing to win on them — but its dense per-CPU remap
 *    packs their pages onto a contiguous color run starting exactly
 *    where the hot propagators live, evicting them more uniformly
 *    than the default mapping did.
 *
 * Data set: 2 * 32KB + 1.25MB + 4 * 384KB = 2.81MB ~ 23MB / 8.
 */

#include "workloads/builder.h"
#include "workloads/workload.h"

namespace cdpc
{

Program
buildSu2cor()
{
    constexpr std::uint64_t rows = 384;
    constexpr std::uint64_t cols = 128;
    constexpr std::uint64_t prop_elems = 4 * 1024;   // 32KB each
    constexpr std::uint64_t latt_elems = 160 * 1024; // 1.25MB
    ProgramBuilder b("103.su2cor");

    // Unanalyzable structures first: lowest virtual addresses.
    std::uint32_t prop0 = b.array1d("prop0", prop_elems);
    std::uint32_t prop1 = b.array1d("prop1", prop_elems);
    std::uint32_t latt = b.array1d("latt", latt_elems);
    std::uint32_t u0 = b.array2d("u0", rows, cols);
    std::uint32_t u1 = b.array2d("u1", rows, cols);
    std::uint32_t u2 = b.array2d("u2", rows, cols);
    std::uint32_t u3 = b.array2d("u3", rows, cols);
    b.markUnanalyzable(prop0);
    b.markUnanalyzable(prop1);
    b.markUnanalyzable(latt);

    b.initNest(sequentialInit1d(b, prop0, prop_elems));
    b.initNest(sequentialInit1d(b, prop1, prop_elems));
    b.initNest(sequentialInit1d(b, latt, latt_elems));
    b.initNest(interleavedInit2d(b, {u0, u1, u2, u3}, rows, cols));

    // Phase 1: gauge-field update — streaming partitioned sweeps
    // that constantly consult the hot propagator tables.
    Phase gauge;
    gauge.name = "gauge-update";
    gauge.occurrences = 30;
    {
        LoopNest nest;
        nest.label = "heatbath";
        nest.kind = NestKind::Parallel;
        nest.parallelDim = 0;
        nest.bounds = {rows - 2, cols};
        nest.instsPerIter = 60;
        nest.refs = {
            b.at2(u0, 0, 1, 0, 0), b.at2(u1, 0, 1, 0, 0),
            b.at2(u2, 0, 1, 0, 0),
            b.at2(u3, 0, 1, 0, 0, true),
            // Hot table lookups: small wrapped strides keep the
            // whole 64KB of propagators live across iterations.
            b.gather1(prop0, 1, 17),
            b.gather1(prop1, 1, 23),
        };
        // Walk the tables with the row index too, so the full hot
        // set is exercised with strong reuse.
        nest.refs[4].terms.push_back({0, 17});
        nest.refs[5].terms.push_back({0, 23});
        gauge.nests.push_back(nest);
    }
    b.phase(gauge);

    // Phase 2: propagator solve — gathers through the big lattice
    // array (capacity background traffic no policy can fix) while
    // the hot tables stay in play.
    Phase prop;
    prop.name = "propagator";
    prop.occurrences = 40;
    {
        LoopNest nest;
        nest.label = "dslash";
        nest.kind = NestKind::Parallel;
        nest.parallelDim = 0;
        nest.bounds = {rows - 2, cols};
        nest.instsPerIter = 48;
        nest.refs = {
            b.at2(u0, 0, 1, 0, 0), b.at2(u2, 0, 1, 0, 0, true),
            b.gather1(latt, 1, 4097),
            b.gather1(prop0, 1, 29),
            b.gather1(prop1, 1, 31, true),
        };
        // Advance the lattice gather with the outer loop too, so the
        // sweep covers fresh (wrapped) regions each row.
        nest.refs[2].terms.push_back({0, 4097 * 128});
        nest.refs[3].terms.push_back({0, 29});
        nest.refs[4].terms.push_back({0, 31});
        prop.nests.push_back(nest);
    }
    b.phase(prop);

    return b.build();
}

} // namespace cdpc
