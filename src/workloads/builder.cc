#include "workloads/builder.h"

namespace cdpc
{

LoopNest
interleavedInit2d(const ProgramBuilder &b,
                  const std::vector<std::uint32_t> &arrays,
                  std::uint64_t rows, std::uint64_t cols)
{
    LoopNest nest;
    nest.label = "init-interleaved";
    nest.kind = NestKind::Sequential;
    nest.bounds = {rows, cols};
    nest.instsPerIter = 4;
    for (std::uint32_t a : arrays)
        nest.refs.push_back(b.at2(a, 0, 1, 0, 0, true));
    return nest;
}

LoopNest
sequentialInit1d(const ProgramBuilder &b, std::uint32_t array,
                 std::uint64_t elems)
{
    LoopNest nest;
    nest.label = "init-seq";
    nest.kind = NestKind::Sequential;
    nest.bounds = {elems};
    nest.instsPerIter = 2;
    nest.refs.push_back(b.at1(array, 0, 1, 0, true));
    return nest;
}

} // namespace cdpc
