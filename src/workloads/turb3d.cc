/**
 * @file
 * 125.turb3d — isotropic homogeneous turbulence (3-D FFTs).
 *
 * The paper uses turb3d as its example of multi-phase steady-state
 * structure: "turb3d contains four phases that each occur 11, 66,
 * 100 and 120 times respectively during the steady state" (Section
 * 3.3). We reproduce exactly that: an x-direction FFT phase, a
 * y-direction phase, a z-direction phase and a nonlinear-term phase
 * with those occurrence counts, over three 48^3 velocity arrays
 * (2.65MB ~ the paper's 24MB / 8). FFT butterflies are
 * compute-dense, so replacement misses are comparatively small and
 * CDPC's improvement is modest — the paper's result.
 */

#include "workloads/builder.h"
#include "workloads/workload.h"

namespace cdpc
{

Program
buildTurb3d()
{
    constexpr std::uint64_t n = 48;
    ProgramBuilder b("125.turb3d");

    std::uint32_t u = b.array3d("u", n, n, n);
    std::uint32_t v = b.array3d("v", n, n, n);
    std::uint32_t w = b.array3d("w", n, n, n);

    for (std::uint32_t arr : {u, v, w})
        b.initNest(sequentialInit1d(b, arr, n * n * n));

    auto fft_phase = [&](const std::string &name, std::uint64_t occ,
                         bool stride_mid) {
        Phase phase;
        phase.name = name;
        phase.occurrences = occ;
        for (std::uint32_t arr : {u, v, w}) {
            LoopNest nest;
            nest.label = name + "-" + b.program().arrays[arr].name;
            nest.kind = NestKind::Parallel;
            nest.parallelDim = 0;
            nest.bounds = {n, n, n};
            nest.instsPerIter = 90; // butterflies are compute-heavy
            if (stride_mid) {
                // Transform along the middle index: innermost loop
                // drives dim 1 (stride n elements).
                nest.refs = {
                    b.at3(arr, 0, 2, 1, 0, 0, 0),
                    b.at3(arr, 0, 2, 1, 0, 0, 0, true),
                };
            } else {
                nest.refs = {
                    b.at3(arr, 0, 1, 2, 0, 0, 0),
                    b.at3(arr, 0, 1, 2, 0, 0, 0, true),
                };
            }
            phase.nests.push_back(nest);
        }
        b.phase(phase);
    };

    fft_phase("xy-transform", 11, false);
    fft_phase("z-transform", 66, true);

    // Nonlinear term: all three arrays together (group access).
    {
        Phase phase;
        phase.name = "nonlinear";
        phase.occurrences = 100;
        LoopNest nest;
        nest.label = "nonlinear";
        nest.kind = NestKind::Parallel;
        nest.parallelDim = 0;
        nest.bounds = {n, n, n};
        nest.instsPerIter = 60;
        nest.refs = {
            b.at3(u, 0, 1, 2, 0, 0, 0),
            b.at3(v, 0, 1, 2, 0, 0, 0),
            b.at3(w, 0, 1, 2, 0, 0, 0),
            b.at3(u, 0, 1, 2, 0, 0, 0, true),
        };
        phase.nests.push_back(nest);
        b.phase(phase);
    }

    // Time advance: light elementwise update.
    {
        Phase phase;
        phase.name = "advance";
        phase.occurrences = 120;
        LoopNest nest;
        nest.label = "advance";
        nest.kind = NestKind::Parallel;
        nest.parallelDim = 0;
        nest.bounds = {n, n, n};
        nest.instsPerIter = 30;
        nest.refs = {
            b.at3(u, 0, 1, 2, 0, 0, 0),
            b.at3(v, 0, 1, 2, 0, 0, 0, true),
            b.at3(w, 0, 1, 2, 0, 0, 0, true),
        };
        phase.nests.push_back(nest);
        b.phase(phase);
    }

    return b.build();
}

} // namespace cdpc
