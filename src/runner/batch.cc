#include "runner/batch.h"

#include <atomic>

#include "common/logging.h"
#include "obs/trace.h"

namespace cdpc::runner
{

std::size_t
Batch::add(JobSpec spec)
{
    specs_.push_back(std::move(spec));
    return specs_.size() - 1;
}

std::vector<JobResult>
Batch::run(ProgressReporter *progress, ResultSink *sink,
           const RunPolicy &policy, const BatchControl *control)
{
    std::vector<JobResult> results(specs_.size());
    if (specs_.empty())
        return results;

    // The batch keeps its own completion count so run() can share a
    // pool with other batches without waiting on their work.
    std::mutex mutex;
    std::condition_variable done_cv;
    std::size_t remaining = 0;
    // First sink-write failure; set once, the batch then drains
    // (running jobs finish, queued jobs cancel) and the error is
    // rethrown after the wait instead of unwinding a pool worker.
    std::string sink_error;
    std::atomic<bool> sink_failed{false};

    auto skipped = [&](std::size_t i) {
        return control && i < control->skip.size() &&
               control->skip[i];
    };
    for (std::size_t i = 0; i < specs_.size(); i++)
        if (!skipped(i))
            remaining++;

    for (std::size_t i = 0; i < specs_.size(); i++) {
        if (skipped(i)) {
            // Already committed in the journal: report it without
            // running and without a sink write (the durable sink
            // holds its line from the resume load).
            JobResult &r = results[i];
            r.index = i;
            r.spec = specs_[i];
            r.outcome = JobOutcome::Skipped;
            r.attempts = 0;
            continue;
        }
        const double submit_us =
            obs::traceActive() ? obs::wallUs() : 0.0;
        pool_.submit([&, i, submit_us] {
            JobResult r;
            const bool cancelled =
                (control && control->cancel &&
                 control->cancel->cancelled()) ||
                sink_failed.load(std::memory_order_relaxed);
            if (cancelled) {
                // Drain: never started, so nothing is committed and
                // a --resume re-runs it.
                r.index = i;
                r.spec = specs_[i];
                r.outcome = JobOutcome::Cancelled;
                r.attempts = 0;
                r.errorKind = "cancelled";
                r.error = "batch drained before this job started";
            } else {
                if (obs::traceActive())
                    obs::runnerSpan("queued",
                                    static_cast<int>(i) + 1,
                                    submit_us, obs::wallUs(), {});
                r = runJobWithPolicy(specs_[i], i, policy);
                if (sink) {
                    try {
                        sink->write(r);
                    } catch (const std::exception &e) {
                        std::lock_guard<std::mutex> lock(mutex);
                        if (sink_error.empty())
                            sink_error = e.what();
                        sink_failed.store(
                            true, std::memory_order_relaxed);
                    }
                }
            }
            if (progress)
                progress->jobDone(r.ok(), r.attempts,
                                  r.quarantined());
            results[i] = std::move(r);
            {
                std::lock_guard<std::mutex> lock(mutex);
                remaining--;
            }
            done_cv.notify_one();
        });
    }

    {
        std::unique_lock<std::mutex> lock(mutex);
        done_cv.wait(lock, [&] { return remaining == 0; });
        fatalIf(!sink_error.empty(), "result sink failed: ",
                sink_error);
    }
    return results;
}

std::vector<JobResult>
runBatch(std::vector<JobSpec> specs, const BatchOptions &options)
{
    ThreadPool pool(options.jobs);
    Batch batch(pool);
    for (JobSpec &spec : specs)
        batch.add(std::move(spec));
    if (options.progress) {
        ProgressReporter reporter(batch.size());
        auto results = batch.run(&reporter, options.sink,
                                 options.policy, options.control);
        reporter.finish();
        return results;
    }
    return batch.run(nullptr, options.sink, options.policy,
                     options.control);
}

std::vector<ExperimentResult>
runBatchOrThrow(std::vector<JobSpec> specs, const BatchOptions &options)
{
    std::vector<JobResult> jobs =
        runBatch(std::move(specs), options);
    std::vector<ExperimentResult> results;
    results.reserve(jobs.size());
    for (JobResult &j : jobs) {
        fatalIf(!j.ok(), "batch job ", j.index, " (",
                j.spec.displayName(), ") failed: ", j.error);
        results.push_back(std::move(*j.result));
    }
    return results;
}

} // namespace cdpc::runner
