#include "runner/batch.h"

#include "common/logging.h"
#include "obs/trace.h"

namespace cdpc::runner
{

std::size_t
Batch::add(JobSpec spec)
{
    specs_.push_back(std::move(spec));
    return specs_.size() - 1;
}

std::vector<JobResult>
Batch::run(ProgressReporter *progress, ResultSink *sink,
           const RunPolicy &policy)
{
    std::vector<JobResult> results(specs_.size());
    if (specs_.empty())
        return results;

    // The batch keeps its own completion count so run() can share a
    // pool with other batches without waiting on their work.
    std::mutex mutex;
    std::condition_variable done_cv;
    std::size_t remaining = specs_.size();

    for (std::size_t i = 0; i < specs_.size(); i++) {
        const double submit_us =
            obs::traceActive() ? obs::wallUs() : 0.0;
        pool_.submit([&, i, submit_us] {
            if (obs::traceActive())
                obs::runnerSpan("queued", static_cast<int>(i) + 1,
                                submit_us, obs::wallUs(), {});
            JobResult r = runJobWithPolicy(specs_[i], i, policy);
            if (sink)
                sink->write(r);
            if (progress)
                progress->jobDone(r.ok(), r.attempts,
                                  r.quarantined());
            results[i] = std::move(r);
            {
                std::lock_guard<std::mutex> lock(mutex);
                remaining--;
            }
            done_cv.notify_one();
        });
    }

    std::unique_lock<std::mutex> lock(mutex);
    done_cv.wait(lock, [&] { return remaining == 0; });
    return results;
}

std::vector<JobResult>
runBatch(std::vector<JobSpec> specs, const BatchOptions &options)
{
    ThreadPool pool(options.jobs);
    Batch batch(pool);
    for (JobSpec &spec : specs)
        batch.add(std::move(spec));
    if (options.progress) {
        ProgressReporter reporter(batch.size());
        auto results =
            batch.run(&reporter, options.sink, options.policy);
        reporter.finish();
        return results;
    }
    return batch.run(nullptr, options.sink, options.policy);
}

std::vector<ExperimentResult>
runBatchOrThrow(std::vector<JobSpec> specs, const BatchOptions &options)
{
    std::vector<JobResult> jobs =
        runBatch(std::move(specs), options);
    std::vector<ExperimentResult> results;
    results.reserve(jobs.size());
    for (JobResult &j : jobs) {
        fatalIf(!j.ok(), "batch job ", j.index, " (",
                j.spec.displayName(), ") failed: ", j.error);
        results.push_back(std::move(*j.result));
    }
    return results;
}

} // namespace cdpc::runner
