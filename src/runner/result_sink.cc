#include "runner/result_sink.h"

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include <fcntl.h>
#include <unistd.h>

#include "common/digest.h"
#include "common/logging.h"
#include "mem/miss_classify.h"
#include "obs/metrics.h"

namespace cdpc::runner
{

std::string
jsonNumber(double v)
{
    // Bare nan/inf are not valid JSON; a reader would reject the
    // whole line. Clamp to 0 and count, so the corruption is visible
    // in the metrics instead of in a parse error downstream.
    if (!std::isfinite(v)) {
        CDPC_METRIC_COUNT("sink.nonFinite", 1);
        warn("result sink: clamped non-finite value to 0");
        v = 0.0;
    }
    // std::to_chars/from_chars render and parse in the C locale
    // whatever LC_NUMERIC says; the old snprintf/sscanf pair would
    // silently fail the round-trip check under a comma-decimal
    // locale and fall back to the long %.17g form.
    char buf[64];
    auto render = [&](int prec) {
        auto res = std::to_chars(buf, buf + sizeof(buf), v,
                                 std::chars_format::general, prec);
        return std::string(buf, res.ptr);
    };
    // Prefer the shorter 15/16-digit form when it round-trips.
    for (int prec = 15; prec <= 16; prec++) {
        std::string s = render(prec);
        double back = 0.0;
        auto [ptr, ec] =
            std::from_chars(s.data(), s.data() + s.size(), back);
        if (ec == std::errc() && ptr == s.data() + s.size() &&
            back == v)
            return s;
    }
    return render(17);
}

namespace
{

std::string
jsonString(const std::string &s)
{
    return "\"" + jsonEscape(s) + "\"";
}

std::string
jsonBool(bool b)
{
    return b ? "true" : "false";
}

/** Streams "key":value pairs with the separating commas. */
class ObjectWriter
{
  public:
    explicit ObjectWriter(std::string &out) : out_(out)
    {
        out_ += '{';
    }

    void
    field(const char *key, const std::string &rendered_value)
    {
        if (!first_)
            out_ += ',';
        first_ = false;
        out_ += '"';
        out_ += key;
        out_ += "\":";
        out_ += rendered_value;
    }

    void close() { out_ += '}'; }

  private:
    std::string &out_;
    bool first_ = true;
};

std::string
missArrayJson(const std::array<double, 6> &by_kind)
{
    std::string out;
    ObjectWriter obj(out);
    for (std::size_t k = 0; k < by_kind.size(); k++)
        obj.field(missKindName(static_cast<MissKind>(k)),
                  jsonNumber(by_kind[k]));
    obj.close();
    return out;
}

std::string
totalsJson(const WeightedTotals &t)
{
    std::string out;
    ObjectWriter obj(out);
    obj.field("insts", jsonNumber(t.insts));
    obj.field("busy", jsonNumber(t.busy));
    obj.field("memStall", jsonNumber(t.memStall));
    obj.field("kernel", jsonNumber(t.kernel));
    obj.field("imbalance", jsonNumber(t.imbalance));
    obj.field("sequential", jsonNumber(t.sequential));
    obj.field("suppressed", jsonNumber(t.suppressed));
    obj.field("sync", jsonNumber(t.sync));
    obj.field("wall", jsonNumber(t.wall));
    obj.field("barriers", jsonNumber(t.barriers));
    obj.field("refs", jsonNumber(t.refs));
    obj.field("l1Misses", jsonNumber(t.l1Misses));
    obj.field("l2Hits", jsonNumber(t.l2Hits));
    obj.field("l2Misses", jsonNumber(t.l2Misses));
    obj.field("pageFaults", jsonNumber(t.pageFaults));
    obj.field("tlbMisses", jsonNumber(t.tlbMisses));
    obj.field("l2HitStall", jsonNumber(t.l2HitStall));
    obj.field("prefetchLateStall", jsonNumber(t.prefetchLateStall));
    obj.field("prefetchFullStall", jsonNumber(t.prefetchFullStall));
    obj.field("missCount", missArrayJson(t.missCount));
    obj.field("missStall", missArrayJson(t.missStall));
    obj.field("busDataBusy", jsonNumber(t.busDataBusy));
    obj.field("busWritebackBusy", jsonNumber(t.busWritebackBusy));
    obj.field("busUpgradeBusy", jsonNumber(t.busUpgradeBusy));
    obj.field("busQueueing", jsonNumber(t.busQueueing));
    obj.field("prefetchesIssued", jsonNumber(t.prefetchesIssued));
    obj.field("prefetchesDropped", jsonNumber(t.prefetchesDropped));
    obj.field("prefetchesUseful", jsonNumber(t.prefetchesUseful));
    obj.close();
    return out;
}

std::string
configJson(const ExperimentConfig &c)
{
    std::string out;
    ObjectWriter obj(out);
    obj.field("machine", jsonString(c.machine.name));
    obj.field("cpus", jsonNumber(c.machine.numCpus));
    obj.field("mapping", jsonString(mappingName(c.mapping)));
    obj.field("aligned", jsonBool(c.aligned));
    obj.field("prefetch", jsonBool(c.prefetch));
    obj.field("binHopRacy", jsonBool(c.binHopRacy));
    obj.field("dynamicRecolor", jsonBool(c.dynamicRecolor));
    obj.field("cyclicAssignment",
              jsonBool(c.cdpcOptions.cyclicAssignment));
    obj.field("greedyOrdering", jsonBool(c.cdpcOptions.greedyOrdering));
    obj.field("seed", std::to_string(c.seed));
    obj.field("preallocatedPages",
              jsonNumber(static_cast<double>(c.preallocatedPages)));
    obj.field("pressureOccupancy", jsonNumber(c.pressure.occupancy));
    obj.field("pressurePattern",
              jsonString(pressurePatternName(c.pressure.pattern)));
    obj.field("fallback", jsonString(fallbackName(c.fallback)));
    obj.close();
    return out;
}

std::string
degradationJson(const VmStats &vs)
{
    std::string out;
    ObjectWriter obj(out);
    obj.field("pageFaults",
              jsonNumber(static_cast<double>(vs.pageFaults)));
    obj.field("hintHonored",
              jsonNumber(static_cast<double>(vs.hintHonored)));
    obj.field("hintFallback",
              jsonNumber(static_cast<double>(vs.hintFallback)));
    obj.field("hintDenied",
              jsonNumber(static_cast<double>(vs.hintDenied)));
    obj.field("noPreference",
              jsonNumber(static_cast<double>(vs.noPreference)));
    obj.field("hintStolen",
              jsonNumber(static_cast<double>(vs.hintStolen)));
    obj.field("reclaimedPages",
              jsonNumber(static_cast<double>(vs.reclaimedPages)));
    obj.close();
    return out;
}

std::string
u64ArrayJson(const std::vector<std::uint64_t> &values)
{
    std::string out = "[";
    for (std::size_t i = 0; i < values.size(); i++) {
        if (i)
            out += ',';
        out += std::to_string(values[i]);
    }
    out += ']';
    return out;
}

std::string
snapshotsJson(const std::vector<obs::IntervalSnapshot> &snaps)
{
    std::string out = "[";
    for (std::size_t i = 0; i < snaps.size(); i++) {
        const obs::IntervalSnapshot &s = snaps[i];
        if (i)
            out += ',';
        ObjectWriter obj(out);
        obj.field("seq", std::to_string(s.seq));
        obj.field("cycles", std::to_string(s.cycles));
        obj.field("refs", std::to_string(s.refs));
        std::string cpus = "[";
        for (std::size_t c = 0; c < s.cpus.size(); c++) {
            const obs::CpuSnapshot &cs = s.cpus[c];
            if (c)
                cpus += ',';
            ObjectWriter cpu(cpus);
            cpu.field("refs", std::to_string(cs.refs));
            cpu.field("l1Misses", std::to_string(cs.l1Misses));
            cpu.field("l2Misses", std::to_string(cs.l2Misses));
            std::string kinds;
            {
                ObjectWriter k(kinds);
                for (std::size_t m = 0; m < cs.missCount.size(); m++)
                    k.field(missKindName(static_cast<MissKind>(m)),
                            std::to_string(cs.missCount[m]));
                k.close();
            }
            cpu.field("missCount", kinds);
            cpu.close();
        }
        cpus += ']';
        obj.field("cpus", cpus);
        std::string colors = "[";
        for (std::size_t c = 0; c < s.colorPages.size(); c++) {
            if (c)
                colors += ',';
            colors += std::to_string(s.colorPages[c]);
        }
        colors += ']';
        obj.field("colorPages", colors);
        // Profiled runs only — absent otherwise, keeping profile-off
        // snapshot output byte-identical.
        if (!s.colorOccupancy.empty())
            obj.field("colorOccupancy", u64ArrayJson(s.colorOccupancy));
        if (!s.colorConflicts.empty())
            obj.field("colorConflicts", u64ArrayJson(s.colorConflicts));
        obj.close();
    }
    out += ']';
    return out;
}

std::string
profileJson(const obs::ProfileResult &p)
{
    std::string out;
    ObjectWriter obj(out);
    std::string entities = "[";
    for (std::size_t i = 0; i < p.entities.size(); i++) {
        if (i)
            entities += ',';
        entities += jsonString(p.entities[i]);
    }
    entities += ']';
    obj.field("entities", entities);
    obj.field("totalConflicts", std::to_string(p.totalConflicts));
    obj.field("classifiedConflicts",
              std::to_string(p.classifiedConflicts));
    obj.field("reconciled", jsonBool(p.reconciled()));
    obj.field("colorConflicts", u64ArrayJson(p.colorConflicts));
    obj.field("occupancy", u64ArrayJson(p.occupancy));
    // The matrix is sparse in practice; only non-zero cells go out.
    std::string cells = "[";
    bool first = true;
    std::size_t n = p.entities.size();
    for (std::uint32_t c = 0; c < p.numColors; c++) {
        for (std::uint32_t e = 0; e < n; e++) {
            for (std::uint32_t v = 0; v < n; v++) {
                std::uint64_t count = p.cell(c, e, v);
                if (!count)
                    continue;
                if (!first)
                    cells += ',';
                first = false;
                ObjectWriter cell(cells);
                cell.field("color", std::to_string(c));
                cell.field("evictor", jsonString(p.entities[e]));
                cell.field("victim", jsonString(p.entities[v]));
                cell.field("count", std::to_string(count));
                cell.close();
            }
        }
    }
    cells += ']';
    obj.field("cells", cells);
    std::string advice = "[";
    for (std::size_t i = 0; i < p.advice.size(); i++) {
        const obs::ProfileAdvice &a = p.advice[i];
        if (i)
            advice += ',';
        ObjectWriter adv(advice);
        adv.field("color", std::to_string(a.color));
        adv.field("evictor", jsonString(p.entities[a.evictor]));
        adv.field("victim", jsonString(p.entities[a.victim]));
        adv.field("conflicts", std::to_string(a.conflicts));
        adv.field("move", jsonString(p.entities[a.moveEntity]));
        adv.field("toColor", std::to_string(a.toColor));
        adv.field("movePages", std::to_string(a.movePages));
        adv.field("predictedDelta", jsonNumber(a.predictedDelta));
        adv.field("measuredDelta", jsonNumber(a.measuredDelta));
        adv.field("validated", jsonBool(a.validated));
        adv.close();
    }
    advice += ']';
    obj.field("advice", advice);
    obj.close();
    return out;
}

std::string
tagsJson(const std::vector<std::string> &tags)
{
    std::string out = "[";
    for (std::size_t i = 0; i < tags.size(); i++) {
        if (i)
            out += ',';
        out += jsonString(tags[i]);
    }
    out += ']';
    return out;
}

} // namespace

std::string
profileToJson(const obs::ProfileResult &p)
{
    return profileJson(p);
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
resultToJson(const JobResult &r)
{
    std::string out;
    ObjectWriter obj(out);
    obj.field("job", jsonNumber(static_cast<double>(r.index)));
    obj.field("name", jsonString(r.spec.displayName()));
    obj.field("workload", jsonString(r.spec.workload));
    obj.field("tags", tagsJson(r.spec.tags));
    obj.field("config", configJson(r.spec.config));
    obj.field("ok", jsonBool(r.ok()));
    obj.field("outcome", jsonString(jobOutcomeName(r.outcome)));
    obj.field("attempts",
              jsonNumber(static_cast<double>(r.attempts)));
    if (!r.ok()) {
        obj.field("errorKind", jsonString(r.errorKind));
        obj.field("error", jsonString(r.error));
        obj.close();
        return out;
    }
    const ExperimentResult &res = *r.result;
    obj.field("policy", jsonString(res.policy));
    obj.field("ncpus", jsonNumber(res.ncpus));
    obj.field("dataSetBytes",
              jsonNumber(static_cast<double>(res.dataSetBytes)));
    obj.field("hintsHonored", jsonNumber(res.hintsHonored));
    obj.field("degradation", degradationJson(res.degradation));
    obj.field("pressurePages",
              jsonNumber(static_cast<double>(res.pressurePages)));
    obj.field("totals", totalsJson(res.totals));
    // Only runs that asked for interval snapshots carry the field,
    // keeping every pre-existing output byte-identical.
    if (!res.snapshots.empty())
        obj.field("snapshots", snapshotsJson(res.snapshots));
    // Same contract for the conflict profiler: absent unless the run
    // asked for it, so profile-off outputs never change.
    if (res.profile.enabled)
        obj.field("profile", profileJson(res.profile));
    std::string derived;
    {
        ObjectWriter d(derived);
        d.field("combined", jsonNumber(res.totals.combinedTime()));
        d.field("overhead", jsonNumber(res.totals.overheadTime()));
        d.field("mcpi", jsonNumber(res.totals.mcpi()));
        d.field("busUtilization",
                jsonNumber(res.totals.busUtilization()));
        d.close();
    }
    obj.field("derived", derived);
    obj.close();
    return out;
}

JsonlResultSink::JsonlResultSink(std::ostream &out) : out_(&out) {}

JsonlResultSink::JsonlResultSink(const std::string &path)
    : owned_(path, std::ios::trunc), out_(&owned_)
{
    fatalIf(!owned_, "cannot open result file ", path);
}

void
JsonlResultSink::write(const JobResult &r)
{
    std::string line = resultToJson(r);
    std::lock_guard<std::mutex> lock(mutex_);
    *out_ << line << "\n";
    out_->flush();
    // A full disk or closed fd must not lose result lines silently:
    // surface it as a typed fatal the batch engine can report.
    if (!out_->good()) {
        CDPC_METRIC_COUNT("sink.writeFailed", 1);
        fatal("result sink: stream write failed after ", lines_,
              " lines (disk full or stream closed?)");
    }
    lines_++;
}

std::size_t
JsonlResultSink::lines() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return lines_;
}

// ------------------------------------------------- DurableJsonlSink

namespace
{

namespace fs = std::filesystem;

/** Write @p content to @p path via a raw fd, fsync, close. */
void
writeFileSynced(const std::string &path, const std::string &content)
{
    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    fatalIf(fd < 0, "cannot open ", path, ": ",
            std::strerror(errno));
    detail::writeFd(fd, path, content.data(), content.size());
    ::fsync(fd);
    ::close(fd);
}

/** rename(2) with a typed fatal on failure. */
void
renameOrFatal(const std::string &from, const std::string &to)
{
    std::error_code ec;
    fs::rename(from, to, ec);
    fatalIf(static_cast<bool>(ec), "cannot rename ", from, " to ", to,
            ": ", ec.message());
}

} // namespace

std::string
DurableJsonlSink::partPath(const std::string &outPath)
{
    return outPath + ".part";
}

std::string
DurableJsonlSink::journalPath(const std::string &outPath)
{
    return outPath + ".journal";
}

std::string
DurableJsonlSink::manifestPath(const std::string &outPath)
{
    return outPath + ".manifest";
}

bool
DurableJsonlSink::manifestComplete(const std::string &outPath)
{
    std::error_code ec;
    return fs::exists(manifestPath(outPath), ec);
}

DurableJsonlSink::DurableJsonlSink(std::string outPath,
                                   const std::vector<JobSpec> &specs,
                                   const Options &opts)
    : outPath_(std::move(outPath)), fsync_(opts.fsyncEach)
{
    std::error_code ec;
    committed_.assign(specs.size(), false);
    // This run is about to (re)produce the output, so a stale
    // completion manifest must not outlive a crash of the new run.
    fs::remove(manifestPath(outPath_), ec);

    bool fresh = true;
    if (opts.resume) {
        ResumePlan plan = loadResumePlan(outPath_, specs);
        committed_ = std::move(plan.committed);
        lines_ = std::move(plan.lines);
        resumedCount_ = plan.committedCount;
        repairedTail_ = plan.repairedTail;
        fresh = resumedCount_ == 0;
    } else {
        fs::remove(journalPath(outPath_), ec);
        fs::remove(partPath(outPath_), ec);
    }

    int flags = O_WRONLY | O_CREAT | (fresh ? O_TRUNC : O_APPEND);
    partFd_ = ::open(partPath(outPath_).c_str(), flags, 0644);
    fatalIf(partFd_ < 0, "cannot open ", partPath(outPath_), ": ",
            std::strerror(errno));
    journal_ = std::make_unique<JournalWriter>(journalPath(outPath_),
                                               fresh, fsync_);
}

DurableJsonlSink::~DurableJsonlSink()
{
    if (partFd_ >= 0)
        ::close(partFd_);
}

void
DurableJsonlSink::write(const JobResult &r)
{
    std::string line = resultToJson(r);
    std::lock_guard<std::mutex> lock(mutex_);
    // Commit order: the line becomes durable first, then its journal
    // record. A crash between the two leaves an uncommitted trailing
    // line, which resume truncates away.
    std::string framed = line + "\n";
    try {
        detail::writeFd(partFd_, "result sink " + partPath(outPath_),
                        framed.data(), framed.size());
    } catch (const FatalError &) {
        CDPC_METRIC_COUNT("sink.writeFailed", 1);
        throw;
    }
    if (fsync_)
        ::fsync(partFd_);
    JournalRecord rec;
    rec.job = r.index;
    rec.digest = fnv1a(line);
    rec.outcome = jobOutcomeName(r.outcome);
    rec.key = r.spec.canonicalKey();
    journal_->append(rec);
    lines_.emplace_back(r.index, std::move(line));
    if (r.index < committed_.size())
        committed_[r.index] = true;
}

std::size_t
DurableJsonlSink::lines() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return lines_.size();
}

void
DurableJsonlSink::finalize()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (finalized_)
        return;
    // Submission order is the canonical order of the final artifact:
    // it is what a serial run writes naturally, and it is what makes
    // an interrupted-then-resumed output byte-identical to an
    // uninterrupted one regardless of completion interleaving.
    std::sort(lines_.begin(), lines_.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    std::string content;
    for (const auto &[job, line] : lines_) {
        content += line;
        content += '\n';
    }
    const std::string tmp = outPath_ + ".tmp";
    writeFileSynced(tmp, content);
    renameOrFatal(tmp, outPath_);

    std::string manifest = "cdpc-batch-manifest v1\n";
    manifest += "jobs=" + std::to_string(lines_.size()) + "\n";
    manifest += "digest=" + digestHex(fnv1a(content)) + "\n";
    const std::string manifest_part = manifestPath(outPath_) + ".part";
    writeFileSynced(manifest_part, manifest);
    renameOrFatal(manifest_part, manifestPath(outPath_));

    ::close(partFd_);
    partFd_ = -1;
    journal_.reset();
    std::error_code ec;
    fs::remove(partPath(outPath_), ec);
    fs::remove(journalPath(outPath_), ec);
    finalized_ = true;
}

} // namespace cdpc::runner
