#include "runner/thread_pool.h"

#include <algorithm>

#include "common/logging.h"

namespace cdpc::runner
{

namespace
{

/** Set while a worker thread runs tasks; -1 on external threads. */
thread_local int tlsWorkerId = -1;

} // namespace

int
currentWorkerId()
{
    return tlsWorkerId;
}

ThreadPool::ThreadPool(unsigned workers)
{
    if (workers == 0)
        workers = std::max(1u, std::thread::hardware_concurrency());
    workers_.reserve(workers);
    for (unsigned i = 0; i < workers; i++)
        workers_.push_back(std::make_unique<Worker>());
    threads_.reserve(workers);
    for (unsigned i = 0; i < workers; i++)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    waitIdle();
    stop_.store(true, std::memory_order_release);
    {
        std::lock_guard<std::mutex> lock(parkMutex_);
    }
    parkCv_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

void
ThreadPool::enqueueOn(unsigned victim, Task task)
{
    {
        std::lock_guard<std::mutex> lock(workers_[victim]->mutex);
        workers_[victim]->deque.push_back(std::move(task));
    }
    unclaimed_.fetch_add(1, std::memory_order_release);
    {
        std::lock_guard<std::mutex> lock(parkMutex_);
    }
    parkCv_.notify_one();
}

void
ThreadPool::submit(Task task)
{
    panicIfNot(task, "ThreadPool::submit of an empty task");
    panicIfNot(!stop_.load(std::memory_order_acquire),
               "ThreadPool::submit after shutdown began");
    pending_.fetch_add(1, std::memory_order_release);
    submitted_.fetch_add(1, std::memory_order_relaxed);
    int self = tlsWorkerId;
    unsigned target;
    if (self >= 0 && static_cast<unsigned>(self) < workerCount()) {
        target = static_cast<unsigned>(self);
    } else {
        target = static_cast<unsigned>(
            nextQueue_.fetch_add(1, std::memory_order_relaxed) %
            workerCount());
    }
    enqueueOn(target, std::move(task));
}

bool
ThreadPool::popLocal(unsigned self, Task &out)
{
    Worker &w = *workers_[self];
    std::lock_guard<std::mutex> lock(w.mutex);
    if (w.deque.empty())
        return false;
    out = std::move(w.deque.back());
    w.deque.pop_back();
    unclaimed_.fetch_sub(1, std::memory_order_acq_rel);
    return true;
}

bool
ThreadPool::stealInto(unsigned self, Task &out)
{
    unsigned n = workerCount();
    for (unsigned off = 1; off < n; off++) {
        unsigned victim = (self + off) % n;
        std::deque<Task> loot;
        {
            std::lock_guard<std::mutex> lock(workers_[victim]->mutex);
            std::deque<Task> &vd = workers_[victim]->deque;
            if (vd.empty())
                continue;
            // Steal half (rounded up), oldest first, so both sides
            // keep a contiguous run of their own submissions.
            std::size_t take = (vd.size() + 1) / 2;
            for (std::size_t i = 0; i < take; i++) {
                loot.push_back(std::move(vd.front()));
                vd.pop_front();
            }
        }
        steals_.fetch_add(1, std::memory_order_relaxed);
        tasksStolen_.fetch_add(loot.size(), std::memory_order_relaxed);
        // First stolen task runs immediately; the rest go to our own
        // deque and become stealable again.
        out = std::move(loot.front());
        loot.pop_front();
        unclaimed_.fetch_sub(1, std::memory_order_acq_rel);
        if (!loot.empty()) {
            std::lock_guard<std::mutex> lock(workers_[self]->mutex);
            std::deque<Task> &sd = workers_[self]->deque;
            for (Task &t : loot)
                sd.push_back(std::move(t));
        }
        return true;
    }
    return false;
}

void
ThreadPool::workerLoop(unsigned self)
{
    tlsWorkerId = static_cast<int>(self);
    for (;;) {
        Task task;
        if (popLocal(self, task) || stealInto(self, task)) {
            task();
            executed_.fetch_add(1, std::memory_order_relaxed);
            if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
                std::lock_guard<std::mutex> lock(parkMutex_);
                idleCv_.notify_all();
            }
            continue;
        }
        std::unique_lock<std::mutex> lock(parkMutex_);
        if (unclaimed_.load(std::memory_order_acquire) > 0)
            continue;
        if (stop_.load(std::memory_order_acquire))
            return;
        parks_.fetch_add(1, std::memory_order_relaxed);
        parkCv_.wait(lock, [this] {
            return unclaimed_.load(std::memory_order_acquire) > 0 ||
                   stop_.load(std::memory_order_acquire);
        });
    }
}

void
ThreadPool::waitIdle()
{
    std::unique_lock<std::mutex> lock(parkMutex_);
    idleCv_.wait(lock, [this] {
        return pending_.load(std::memory_order_acquire) == 0;
    });
}

ThreadPoolStats
ThreadPool::stats() const
{
    ThreadPoolStats s;
    s.submitted = submitted_.load(std::memory_order_relaxed);
    s.executed = executed_.load(std::memory_order_relaxed);
    s.steals = steals_.load(std::memory_order_relaxed);
    s.tasksStolen = tasksStolen_.load(std::memory_order_relaxed);
    s.parks = parks_.load(std::memory_order_relaxed);
    return s;
}

} // namespace cdpc::runner
