#include "runner/progress.h"

#include <iostream>

#include "common/logging.h"
#include "common/table.h"

namespace cdpc::runner
{

ProgressReporter::ProgressReporter(std::size_t total, std::ostream *out,
                                   double min_interval)
    : out_(out ? out : &std::cerr), total_(total),
      minInterval_(min_interval), start_(Clock::now()), lastEmit_(start_)
{}

void
ProgressReporter::jobDone(bool ok, std::uint32_t attempts,
                          bool quarantined)
{
    std::lock_guard<std::mutex> lock(mutex_);
    done_++;
    if (!ok)
        failed_++;
    if (attempts > 1)
        retries_ += attempts - 1;
    if (quarantined)
        quarantined_++;
    if (isQuiet())
        return;
    auto now = Clock::now();
    double since_emit =
        std::chrono::duration<double>(now - lastEmit_).count();
    if (since_emit >= minInterval_ || done_ == total_)
        emitLocked(false);
}

void
ProgressReporter::finish()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (isQuiet() || finalEmitted_)
        return;
    if (emitted_ || done_ < total_ || failed_ > 0)
        emitLocked(true);
}

void
ProgressReporter::emitLocked(bool final)
{
    auto now = Clock::now();
    double elapsed = std::chrono::duration<double>(now - start_).count();
    double rate = elapsed > 0 ? done_ / elapsed : 0.0;
    *out_ << "batch: " << done_ << "/" << total_ << " jobs";
    if (failed_)
        *out_ << " (" << failed_ << " failed)";
    if (quarantined_)
        *out_ << ", " << quarantined_ << " quarantined";
    if (retries_)
        *out_ << ", " << retries_ << " retries";
    if (rate > 0)
        *out_ << ", " << fmtF(rate, 1) << " jobs/s";
    if (final || done_ == total_) {
        *out_ << ", " << fmtF(elapsed, 1) << "s elapsed";
    } else if (rate > 0 && total_ > done_) {
        *out_ << ", ETA " << fmtF((total_ - done_) / rate, 0) << "s";
    }
    *out_ << "\n";
    out_->flush();
    lastEmit_ = now;
    emitted_ = true;
    if (done_ == total_)
        finalEmitted_ = true;
}

std::size_t
ProgressReporter::done() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return done_;
}

std::size_t
ProgressReporter::failed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return failed_;
}

std::size_t
ProgressReporter::retries() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return retries_;
}

std::size_t
ProgressReporter::quarantined() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return quarantined_;
}

} // namespace cdpc::runner
