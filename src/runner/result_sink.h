/**
 * @file
 * Streaming JSON-lines output of batch results: one self-describing
 * JSON object per job, carrying the spec that produced it and the
 * full stats breakdown, so downstream tooling (plotters, regression
 * trackers, future PRs' trajectory comparisons) can consume batch
 * output without parsing the human tables.
 *
 * Lines are written in *completion* order under a lock (the sink is
 * shared by all workers); every line carries the job's submission
 * index, so `sort -n` on the "job" field — or the in-order vector
 * the Batch API returns — recovers submission order. Doubles are
 * printed with round-trip precision, which is what lets a test diff
 * the serialized form of a parallel batch against a serial one.
 *
 * Two sinks exist:
 *  - JsonlResultSink: the classic streaming sink (stream or
 *    truncated file), with write-failure detection — a full disk or
 *    closed fd is a typed fatal plus a sink.writeFailed metric, not
 *    a silently lost line.
 *  - DurableJsonlSink: the crash-safe sink (DESIGN.md §13). During
 *    the run it appends committed lines to `<out>.part` paired with
 *    framed records in `<out>.journal` (see runner/journal.h); on
 *    successful completion finalize() writes `<out>` in submission
 *    order (making interrupted-then-resumed byte-identical to
 *    uninterrupted), then atomically renames a manifest into place
 *    so readers can tell a complete output from an interrupted one.
 */

#ifndef CDPC_RUNNER_RESULT_SINK_H
#define CDPC_RUNNER_RESULT_SINK_H

#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "runner/job.h"
#include "runner/journal.h"

namespace cdpc::obs
{
struct ProfileResult;
}

namespace cdpc::runner
{

/** JSON-escape the contents of @p s (no surrounding quotes). */
std::string jsonEscape(const std::string &s);

/**
 * One JSON object for a run's conflict-attribution profile (entities,
 * per-color totals, sparse matrix cells, advice). The same renderer
 * resultToJson embeds; exposed for `cdpcsim profile --out`.
 */
std::string profileToJson(const obs::ProfileResult &p);

/**
 * Shortest decimal form of @p v that round-trips exactly, rendered
 * and checked locale-independently (std::to_chars/from_chars), so
 * output bytes never depend on LC_NUMERIC.
 */
std::string jsonNumber(double v);

/** @return one JSON object (no trailing newline) for @p r. */
std::string resultToJson(const JobResult &r);

/** Receives each finished job; implementations must be thread-safe. */
class ResultSink
{
  public:
    virtual ~ResultSink() = default;
    virtual void write(const JobResult &r) = 0;
};

/** Appends one JSON line per job to a stream or file. */
class JsonlResultSink : public ResultSink
{
  public:
    /** Write to @p out (kept open; caller owns the stream). */
    explicit JsonlResultSink(std::ostream &out);
    /** Write to @p path (truncates; fatal() if unopenable). */
    explicit JsonlResultSink(const std::string &path);

    /** Append one line; fatal() if the stream rejects the write. */
    void write(const JobResult &r) override;

    std::size_t lines() const;

  private:
    std::ofstream owned_;
    std::ostream *out_;
    mutable std::mutex mutex_;
    std::size_t lines_ = 0;
};

/** Crash-safe journaled sink with atomic-commit finalization. */
class DurableJsonlSink : public ResultSink
{
  public:
    struct Options
    {
        /** Start from an existing journal's committed prefix. */
        bool resume = false;
        /** fsync(2) the part file and journal after every commit
         *  (survives OS crashes, not just process kills). */
        bool fsyncEach = false;
    };

    /**
     * Open the durable sink for @p outPath. With opts.resume, load
     * and validate `<outPath>.journal` against @p specs (typed fatal
     * on spec drift or mid-file corruption; torn tails healed) and
     * skip-mask the committed jobs; otherwise start fresh, removing
     * any stale part/journal/manifest.
     */
    DurableJsonlSink(std::string outPath,
                     const std::vector<JobSpec> &specs,
                     const Options &opts);
    ~DurableJsonlSink() override;

    /** Append the line to the part file, then journal the commit. */
    void write(const JobResult &r) override;

    /** committed()[i]: job i was already committed (resume skip). */
    const std::vector<bool> &committed() const { return committed_; }
    /** Jobs loaded from the journal at construction. */
    std::size_t resumedCount() const { return resumedCount_; }
    /** Total committed lines (resumed + written this run). */
    std::size_t lines() const;
    /** A torn journal/part tail was detected and healed on load. */
    bool repairedTail() const { return repairedTail_; }

    /**
     * All jobs committed: write `<out>` in submission order via a
     * temp-file rename, publish the manifest atomically, and remove
     * the part file and journal. Without this call (crash, drain)
     * the part/journal pair stays behind for --resume.
     */
    void finalize();

    const std::string &outPath() const { return outPath_; }
    static std::string partPath(const std::string &outPath);
    static std::string journalPath(const std::string &outPath);
    static std::string manifestPath(const std::string &outPath);
    /** @return whether a completed-run manifest exists for @p out. */
    static bool manifestComplete(const std::string &outPath);

  private:
    std::string outPath_;
    int partFd_ = -1;
    bool fsync_ = false;
    std::unique_ptr<JournalWriter> journal_;
    /** Committed (job index, line) pairs, resumed + this run. */
    std::vector<std::pair<std::size_t, std::string>> lines_;
    std::vector<bool> committed_;
    std::size_t resumedCount_ = 0;
    bool repairedTail_ = false;
    bool finalized_ = false;
    mutable std::mutex mutex_;
};

} // namespace cdpc::runner

#endif // CDPC_RUNNER_RESULT_SINK_H
