/**
 * @file
 * Streaming JSON-lines output of batch results: one self-describing
 * JSON object per job, carrying the spec that produced it and the
 * full stats breakdown, so downstream tooling (plotters, regression
 * trackers, future PRs' trajectory comparisons) can consume batch
 * output without parsing the human tables.
 *
 * Lines are written in *completion* order under a lock (the sink is
 * shared by all workers); every line carries the job's submission
 * index, so `sort -n` on the "job" field — or the in-order vector
 * the Batch API returns — recovers submission order. Doubles are
 * printed with round-trip precision, which is what lets a test diff
 * the serialized form of a parallel batch against a serial one.
 */

#ifndef CDPC_RUNNER_RESULT_SINK_H
#define CDPC_RUNNER_RESULT_SINK_H

#include <fstream>
#include <mutex>
#include <ostream>
#include <string>

#include "runner/job.h"

namespace cdpc::runner
{

/** JSON-escape the contents of @p s (no surrounding quotes). */
std::string jsonEscape(const std::string &s);

/** @return one JSON object (no trailing newline) for @p r. */
std::string resultToJson(const JobResult &r);

/** Receives each finished job; implementations must be thread-safe. */
class ResultSink
{
  public:
    virtual ~ResultSink() = default;
    virtual void write(const JobResult &r) = 0;
};

/** Appends one JSON line per job to a stream or file. */
class JsonlResultSink : public ResultSink
{
  public:
    /** Write to @p out (kept open; caller owns the stream). */
    explicit JsonlResultSink(std::ostream &out);
    /** Write to @p path (truncates; fatal() if unopenable). */
    explicit JsonlResultSink(const std::string &path);

    void write(const JobResult &r) override;

    std::size_t lines() const;

  private:
    std::ofstream owned_;
    std::ostream *out_;
    mutable std::mutex mutex_;
    std::size_t lines_ = 0;
};

} // namespace cdpc::runner

#endif // CDPC_RUNNER_RESULT_SINK_H
