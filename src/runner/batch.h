/**
 * @file
 * The Batch API: fan a list of JobSpecs across a work-stealing pool
 * and gather the ExperimentResults *in submission order*.
 *
 * Guarantees:
 *  - in-order delivery: run() returns results[i] for specs[i],
 *    whatever order the workers finished in;
 *  - determinism: specs are executed unmodified and every experiment
 *    is a pure function of its spec, so a parallel batch is
 *    bit-identical to serial execution of the same specs (the
 *    serialized JSON of the two result vectors compares equal);
 *  - failure isolation: an exception inside one job is captured in
 *    that job's JobResult::error and does not poison the batch —
 *    every other job still runs to completion.
 */

#ifndef CDPC_RUNNER_BATCH_H
#define CDPC_RUNNER_BATCH_H

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <vector>

#include "common/signals.h"
#include "runner/job.h"
#include "runner/progress.h"
#include "runner/result_sink.h"
#include "runner/thread_pool.h"

namespace cdpc::runner
{

/** Crash-safety hooks for one Batch::run (DESIGN.md §13). */
struct BatchControl
{
    /**
     * Cooperative cancellation (graceful drain): once the token is
     * cancelled, queued jobs that have not started report
     * JobOutcome::Cancelled without running; jobs already in flight
     * finish and commit normally.
     */
    const CancelToken *cancel = nullptr;
    /**
     * skip[i]: job i is already committed (resume); it is reported
     * as JobOutcome::Skipped without running and without a sink
     * write — the durable sink already holds its line.
     */
    std::vector<bool> skip;
};

/** A group of jobs submitted together over a (possibly shared) pool. */
class Batch
{
  public:
    explicit Batch(ThreadPool &pool) : pool_(pool) {}

    /** Queue @p spec; @return its submission index. */
    std::size_t add(JobSpec spec);

    std::size_t size() const { return specs_.size(); }

    /**
     * Execute every queued spec and block until all finish.
     * @param progress optional per-job completion reporting
     * @param sink     optional streaming sink (completion order);
     *                 a sink write failure drains the batch and is
     *                 rethrown as FatalError after in-flight jobs
     *                 finish
     * @param policy   watchdog/retry knobs applied to every job
     * @param control  optional cancel token + resume skip mask
     * @return one JobResult per spec, in submission order
     */
    std::vector<JobResult> run(ProgressReporter *progress = nullptr,
                               ResultSink *sink = nullptr,
                               const RunPolicy &policy = RunPolicy{},
                               const BatchControl *control = nullptr);

  private:
    ThreadPool &pool_;
    std::vector<JobSpec> specs_;
};

/** Options for the one-shot runBatch() convenience wrapper. */
struct BatchOptions
{
    /** Worker threads; 0 means hardware_concurrency. */
    unsigned jobs = 0;
    /** Report progress to stderr (rate-limited). */
    bool progress = false;
    /** Optional streaming sink. */
    ResultSink *sink = nullptr;
    /** Per-job timeout watchdog and transient-error retry knobs. */
    RunPolicy policy;
    /** Optional cancel token + resume skip mask. */
    const BatchControl *control = nullptr;
};

/** Create a pool, run @p specs through a Batch, tear the pool down. */
std::vector<JobResult> runBatch(std::vector<JobSpec> specs,
                                const BatchOptions &options = {});

/**
 * runBatch() for callers that treat any job failure as fatal:
 * rethrows the first failed job's error as FatalError and unwraps
 * the ExperimentResults.
 */
std::vector<ExperimentResult>
runBatchOrThrow(std::vector<JobSpec> specs,
                const BatchOptions &options = {});

} // namespace cdpc::runner

#endif // CDPC_RUNNER_BATCH_H
