/**
 * @file
 * The unit of batch execution: a named ExperimentConfig plus the
 * workload it runs, and the per-job outcome record the batch engine
 * hands back.
 *
 * Determinism contract: a JobSpec is a *pure* description — running
 * it depends only on its own fields (every source of randomness in
 * an experiment is seeded from config.seed), never on which worker
 * thread runs it or in what order. The batch engine executes specs
 * unmodified, which is what makes a parallel batch bit-identical to
 * serial execution of the same specs.
 */

#ifndef CDPC_RUNNER_JOB_H
#define CDPC_RUNNER_JOB_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "harness/experiment.h"

namespace cdpc::runner
{

/** One batch job: a named experiment on a named workload. */
struct JobSpec
{
    /** Display name; defaults to "<workload>/<policy>/<cpus>cpu". */
    std::string name;
    /** Workload registry name (e.g. "101.tomcatv"). */
    std::string workload;
    ExperimentConfig config;
    /** Free-form labels carried through to the result sink. */
    std::vector<std::string> tags;

    /** @return name, or the default derived display name. */
    std::string displayName() const;
};

/** Convenience builder with the default display name. */
JobSpec makeJob(std::string workload, ExperimentConfig config,
                std::vector<std::string> tags = {});

/** What one job produced (exactly one of result/error is set). */
struct JobResult
{
    /** Submission index within the batch. */
    std::size_t index = 0;
    JobSpec spec;
    /** Present iff the job completed without throwing. */
    std::optional<ExperimentResult> result;
    /** The captured exception message when the job failed. */
    std::string error;
    /** Host wall-clock seconds this job took. */
    double hostSeconds = 0.0;

    bool ok() const { return result.has_value(); }
};

/**
 * Derive a statistically independent per-job seed from a batch base
 * seed and the job's submission index (splitmix64 finalizer). The
 * batch engine never reseeds jobs implicitly; spec generators that
 * want distinct random streams per job call this explicitly, keeping
 * the seed a visible part of the spec.
 */
std::uint64_t deriveJobSeed(std::uint64_t base, std::uint64_t index);

/** Run one spec synchronously (the function the pool workers call). */
JobResult runJob(const JobSpec &spec, std::size_t index = 0);

} // namespace cdpc::runner

#endif // CDPC_RUNNER_JOB_H
