/**
 * @file
 * The unit of batch execution: a named ExperimentConfig plus the
 * workload it runs, and the per-job outcome record the batch engine
 * hands back.
 *
 * Determinism contract: a JobSpec is a *pure* description — running
 * it depends only on its own fields (every source of randomness in
 * an experiment is seeded from config.seed), never on which worker
 * thread runs it or in what order. The batch engine executes specs
 * unmodified, which is what makes a parallel batch bit-identical to
 * serial execution of the same specs.
 *
 * Self-healing: runJobWithPolicy() wraps one spec in a per-job
 * timeout watchdog and a bounded exponential-backoff retry loop.
 * Only TransientError failures are retried; FatalError/PanicError
 * and timeouts quarantine the job immediately. A job that exhausts
 * its attempts (or can never be retried) is reported with its
 * outcome and error kind rather than poisoning the batch.
 */

#ifndef CDPC_RUNNER_JOB_H
#define CDPC_RUNNER_JOB_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "harness/experiment.h"

namespace cdpc::runner
{

/** One batch job: a named experiment on a named workload. */
struct JobSpec
{
    /** Display name; defaults to "<workload>/<policy>/<cpus>cpu". */
    std::string name;
    /** Workload registry name (e.g. "101.tomcatv"). */
    std::string workload;
    ExperimentConfig config;
    /** Free-form labels carried through to the result sink. */
    std::vector<std::string> tags;
    /**
     * Emit sim-level trace events for this job when a trace writer
     * is installed. Runner spans (queue/attempt/retry) are always
     * emitted; this gates the much chattier experiment lane. Batch
     * specs default it off (opt back in with trace=1); programmatic
     * and single-run jobs default on.
     */
    bool trace = true;

    /** @return name, or the default derived display name. */
    std::string displayName() const;

    /**
     * Stable identity of this spec for the durable journal:
     * "<displayName>@<16-hex fnv1a of the spec's semantic fields>".
     * Two specs with the same key produce the same result line, so a
     * resume may skip the job; any drift in workload, machine,
     * policy, seed, pressure, or the other output-determining knobs
     * changes the key and turns a stale resume into a typed fatal
     * instead of a silent mis-skip.
     */
    std::string canonicalKey() const;
};

/** Convenience builder with the default display name. */
JobSpec makeJob(std::string workload, ExperimentConfig config,
                std::vector<std::string> tags = {});

/** How one job ended, after all retries. */
enum class JobOutcome
{
    Ok,        ///< produced a result
    Failed,    ///< quarantined: permanent error or retries exhausted
    TimedOut,  ///< quarantined: the watchdog gave up on it
    Skipped,   ///< already committed in the journal (resume)
    Cancelled, ///< never ran: batch drained on SIGINT/SIGTERM
};

/** @return "ok" | "failed" | "timeout" | "skipped" | "cancelled". */
const char *jobOutcomeName(JobOutcome outcome);

/** Watchdog + retry knobs for one batch run. */
struct RunPolicy
{
    /** Wall-clock seconds one attempt may take; 0 disables. */
    double timeoutSeconds = 0.0;
    /** Retries after the first attempt (transient errors only). */
    std::uint32_t maxRetries = 0;
    /** Backoff before retry n is backoffMs * 2^(n-1), capped. */
    std::uint32_t backoffMs = 100;
    std::uint32_t maxBackoffMs = 5000;
};

/** What one job produced (result set iff outcome == Ok). */
struct JobResult
{
    /** Submission index within the batch. */
    std::size_t index = 0;
    JobSpec spec;
    /** Present iff the job completed without throwing. */
    std::optional<ExperimentResult> result;
    /** The captured exception message when the job failed. */
    std::string error;
    /** "transient" | "fatal" | "panic" | "timeout" | "error". */
    std::string errorKind;
    JobOutcome outcome = JobOutcome::Ok;
    /** Times the job was started (1 + retries actually taken). */
    std::uint32_t attempts = 1;
    /** Host wall-clock seconds this job took (all attempts). */
    double hostSeconds = 0.0;

    bool ok() const { return result.has_value(); }
    /** A job the batch gave up on (failed or timed out). Skipped
     *  and cancelled jobs are not quarantined: a skip is a prior
     *  success, a cancel is resumable work, not a job fault. */
    bool quarantined() const
    {
        return outcome == JobOutcome::Failed ||
               outcome == JobOutcome::TimedOut;
    }
};

/**
 * Derive a statistically independent per-job seed from a batch base
 * seed and the job's submission index (splitmix64 finalizer). The
 * batch engine never reseeds jobs implicitly; spec generators that
 * want distinct random streams per job call this explicitly, keeping
 * the seed a visible part of the spec.
 */
std::uint64_t deriveJobSeed(std::uint64_t base, std::uint64_t index);

/** Run one spec synchronously (no watchdog, no retries). */
JobResult runJob(const JobSpec &spec, std::size_t index = 0);

/**
 * Run one spec under @p policy: each attempt executes on a watched
 * thread that must finish within the timeout (the watchdog first
 * asks the attempt to cancel cooperatively, then abandons it);
 * transient failures are retried with exponential backoff.
 */
JobResult runJobWithPolicy(const JobSpec &spec, std::size_t index,
                           const RunPolicy &policy);

/**
 * Join executor threads that were abandoned by timeout watchdogs
 * but have since finished or honored cancellation. Called by tests
 * and at process exit points to keep sanitizers quiet; a truly hung
 * thread is skipped (it stays detached).
 */
void joinAbandonedJobThreads();

} // namespace cdpc::runner

#endif // CDPC_RUNNER_JOB_H
