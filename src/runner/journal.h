/**
 * @file
 * The durable job journal behind crash-safe batches (DESIGN.md §13).
 *
 * While a batch with durability enabled runs, every committed job
 * appends two things under one lock: its JSON result line to
 * `<out>.part`, then one framed record to `<out>.journal`. A record
 * carries the job's submission index, the canonical spec key (so a
 * resume against a *different* spec file is a typed fatal, not a
 * silent mis-skip), the FNV-1a digest of the committed JSONL line,
 * and the job outcome. Records are framed as
 *
 *     R <payload-length> <fnv1a-of-payload, 16 hex digits> <payload>
 *
 * one per line after a fixed header line, which makes a crash torn
 * mid-append detectable: the torn tail record simply fails its
 * length/checksum/newline check and is dropped, while corruption
 * anywhere *before* the tail is a typed fatal naming the journal.
 *
 * loadResumePlan() joins the journal against the part file: a job is
 * considered committed only when its journal record AND its output
 * line are both intact and agree on the digest — so whatever a
 * SIGKILL tears (line without record, record without line, half of
 * either), resume re-runs the job instead of mis-skipping it. The
 * loader then truncates both files back to the committed prefix,
 * healing the torn tail in place before the batch appends again.
 */

#ifndef CDPC_RUNNER_JOURNAL_H
#define CDPC_RUNNER_JOURNAL_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "runner/job.h"

namespace cdpc::runner
{

/** First line of every journal file. */
extern const char kJournalHeader[];

namespace detail
{
/** write(2) the whole buffer to @p fd; fatal() naming @p path. */
void writeFd(int fd, const std::string &path, const char *data,
             std::size_t n);
} // namespace detail

/** One committed job, as recorded in the sidecar journal. */
struct JournalRecord
{
    /** Submission index within the batch. */
    std::uint64_t job = 0;
    /** FNV-1a digest of the committed JSONL line (no newline). */
    std::uint64_t digest = 0;
    /** jobOutcomeName() at commit time ("ok" | "failed" | ...). */
    std::string outcome;
    /** JobSpec::canonicalKey() of the job that produced the line. */
    std::string key;
};

/** Render one framed record line (with trailing newline). */
std::string renderJournalRecord(const JournalRecord &rec);

/** What loadJournal() recovered from a (possibly torn) journal. */
struct JournalLoad
{
    std::vector<JournalRecord> records;
    /** Byte offset just past record i (for healing truncation). */
    std::vector<std::uint64_t> recordEnds;
    /** Byte length of the header line. */
    std::uint64_t headerBytes = 0;
    /** A torn tail record was detected and dropped. */
    bool tornTail = false;
    std::string tornReason;
};

/**
 * Parse @p path. A missing or empty file loads as zero records; a
 * torn final record (truncated, checksum mismatch, missing newline)
 * is dropped and reported via tornTail; any malformed content before
 * the final record is a typed fatal naming the journal.
 */
JournalLoad loadJournal(const std::string &path);

/** Append-only journal writer over a raw fd (optionally fsynced). */
class JournalWriter
{
  public:
    /**
     * Open @p path for appending; when @p truncate, start a fresh
     * journal (header written). fatal() if the file cannot be opened
     * or the header cannot be written.
     */
    JournalWriter(const std::string &path, bool truncate,
                  bool fsyncEach);
    ~JournalWriter();

    JournalWriter(const JournalWriter &) = delete;
    JournalWriter &operator=(const JournalWriter &) = delete;

    /** Durably append @p rec; fatal() on any write failure. */
    void append(const JournalRecord &rec);

    const std::string &path() const { return path_; }

  private:
    std::string path_;
    int fd_ = -1;
    bool fsync_;
};

/** The committed state a resumed batch starts from. */
struct ResumePlan
{
    /** committed[i]: job i is already committed, skip it. */
    std::vector<bool> committed;
    /** Committed (job index, JSONL line) pairs in commit order. */
    std::vector<std::pair<std::size_t, std::string>> lines;
    std::size_t committedCount = 0;
    /** A torn tail (journal or part file) was dropped and healed. */
    bool repairedTail = false;
};

/**
 * Load `<outPath>.journal` + `<outPath>.part`, validate every record
 * against @p specs (index in range, canonical key matches — a
 * mismatch is spec drift and a typed fatal naming the divergent job)
 * and against the part file (line present, digest matches), then
 * truncate both files back to the committed prefix. A missing
 * journal yields an empty plan (fresh start).
 */
ResumePlan loadResumePlan(const std::string &outPath,
                          const std::vector<JobSpec> &specs);

} // namespace cdpc::runner

#endif // CDPC_RUNNER_JOURNAL_H
