/**
 * @file
 * Rate-limited batch progress reporting to stderr: jobs done / total,
 * throughput and an ETA, updated at most a few times per second no
 * matter how fast jobs complete, and silenced entirely when the
 * library-wide quiet flag is set (so piping a bench's stdout stays
 * clean and tests stay silent).
 */

#ifndef CDPC_RUNNER_PROGRESS_H
#define CDPC_RUNNER_PROGRESS_H

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <ostream>

namespace cdpc::runner
{

class ProgressReporter
{
  public:
    /**
     * @param total        jobs expected in the batch
     * @param out          stream to report to (default std::cerr)
     * @param min_interval minimum seconds between progress lines
     */
    explicit ProgressReporter(std::size_t total,
                              std::ostream *out = nullptr,
                              double min_interval = 0.5);

    /**
     * Record one finished job; prints when the rate limit allows.
     *
     * @param ok          whether the job produced a result
     * @param attempts    starts the job took (retries = attempts - 1)
     * @param quarantined whether the batch gave up on the job
     */
    void jobDone(bool ok, std::uint32_t attempts = 1,
                 bool quarantined = false);

    /** Print the final summary line unless jobDone() already did. */
    void finish();

    std::size_t done() const;
    std::size_t failed() const;
    std::size_t retries() const;
    std::size_t quarantined() const;

  private:
    void emitLocked(bool final);

    using Clock = std::chrono::steady_clock;

    mutable std::mutex mutex_;
    std::ostream *out_;
    std::size_t total_;
    std::size_t done_ = 0;
    std::size_t failed_ = 0;
    std::size_t retries_ = 0;
    std::size_t quarantined_ = 0;
    double minInterval_;
    Clock::time_point start_;
    Clock::time_point lastEmit_;
    bool emitted_ = false;
    bool finalEmitted_ = false;
};

} // namespace cdpc::runner

#endif // CDPC_RUNNER_PROGRESS_H
