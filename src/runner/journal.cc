#include "runner/journal.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

#include "common/digest.h"
#include "common/logging.h"

namespace cdpc::runner
{

const char kJournalHeader[] = "cdpc-journal v1";

namespace detail
{

void
writeFd(int fd, const std::string &path, const char *data,
        std::size_t n)
{
    while (n > 0) {
        ssize_t w = ::write(fd, data, n);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            fatal(path, ": write failed: ", std::strerror(errno));
        }
        data += w;
        n -= static_cast<std::size_t>(w);
    }
}

} // namespace detail

namespace
{

namespace fs = std::filesystem;

std::string
recordPayload(const JournalRecord &rec)
{
    std::ostringstream os;
    os << "job=" << rec.job << " digest=" << digestHex(rec.digest)
       << " outcome=" << rec.outcome << " key=" << rec.key;
    return os.str();
}

/** Parse one framed record line (no newline); false = malformed. */
bool
parseRecordLine(const std::string &line, JournalRecord &out,
                std::string &why)
{
    if (line.rfind("R ", 0) != 0) {
        why = "missing record marker";
        return false;
    }
    std::string::size_type at = 2;
    std::string::size_type len_end = at;
    while (len_end < line.size() && std::isdigit(
               static_cast<unsigned char>(line[len_end])))
        len_end++;
    if (len_end == at || len_end >= line.size() ||
        line[len_end] != ' ') {
        why = "bad length field";
        return false;
    }
    std::uint64_t len =
        std::strtoull(line.substr(at, len_end - at).c_str(), nullptr,
                      10);
    std::string::size_type cksum_at = len_end + 1;
    if (cksum_at + 16 >= line.size() || line[cksum_at + 16] != ' ') {
        why = "bad checksum field";
        return false;
    }
    std::string cksum_hex = line.substr(cksum_at, 16);
    for (char c : cksum_hex) {
        if (!std::isxdigit(static_cast<unsigned char>(c))) {
            why = "bad checksum field";
            return false;
        }
    }
    std::string payload = line.substr(cksum_at + 17);
    if (payload.size() != len) {
        why = "payload length mismatch";
        return false;
    }
    std::uint64_t cksum =
        std::strtoull(cksum_hex.c_str(), nullptr, 16);
    if (fnv1a(payload) != cksum) {
        why = "payload checksum mismatch";
        return false;
    }

    // payload: job=<dec> digest=<16hex> outcome=<word> key=<rest>
    std::istringstream pin(payload);
    std::string job_kv, digest_kv, outcome_kv;
    if (!(pin >> job_kv >> digest_kv >> outcome_kv) ||
        job_kv.rfind("job=", 0) != 0 ||
        digest_kv.rfind("digest=", 0) != 0 ||
        outcome_kv.rfind("outcome=", 0) != 0) {
        why = "malformed payload fields";
        return false;
    }
    std::string::size_type key_at = payload.find(" key=");
    if (key_at == std::string::npos) {
        why = "payload missing key";
        return false;
    }
    out.job = std::strtoull(job_kv.c_str() + 4, nullptr, 10);
    out.digest = std::strtoull(digest_kv.c_str() + 7, nullptr, 16);
    out.outcome = outcome_kv.substr(8);
    out.key = payload.substr(key_at + 5);
    return true;
}

} // namespace

std::string
renderJournalRecord(const JournalRecord &rec)
{
    std::string payload = recordPayload(rec);
    std::ostringstream os;
    os << "R " << payload.size() << ' ' << digestHex(fnv1a(payload))
       << ' ' << payload << '\n';
    return os.str();
}

JournalLoad
loadJournal(const std::string &path)
{
    JournalLoad load;
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return load;
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string text = buf.str();
    if (text.empty())
        return load;

    // Header line. An incomplete first line is a crash during journal
    // creation: nothing was committed, treat as empty.
    std::string::size_type eol = text.find('\n');
    if (eol == std::string::npos) {
        load.tornTail = true;
        load.tornReason = "torn header line";
        return load;
    }
    fatalIf(text.substr(0, eol) != kJournalHeader, "journal ", path,
            ": unrecognized header '", text.substr(0, eol), "'");
    load.headerBytes = eol + 1;

    std::string::size_type at = load.headerBytes;
    while (at < text.size()) {
        std::string::size_type end = text.find('\n', at);
        bool last = end == std::string::npos ||
                    text.find('\n', end + 1) == std::string::npos;
        if (end == std::string::npos) {
            // No newline: an append torn mid-record. Drop it.
            load.tornTail = true;
            load.tornReason = "torn tail record (no newline)";
            break;
        }
        std::string line = text.substr(at, end - at);
        JournalRecord rec;
        std::string why;
        if (!parseRecordLine(line, rec, why)) {
            // Only the final record may be torn; anything earlier is
            // corruption, and silently skipping it could mis-skip a
            // job on resume.
            fatalIf(!last, "journal ", path, ": record ",
                    load.records.size(), " is corrupt (", why, ")");
            load.tornTail = true;
            load.tornReason = "torn tail record (" + why + ")";
            break;
        }
        load.records.push_back(std::move(rec));
        load.recordEnds.push_back(end + 1);
        at = end + 1;
    }
    return load;
}

JournalWriter::JournalWriter(const std::string &path, bool truncate,
                             bool fsyncEach)
    : path_(path), fsync_(fsyncEach)
{
    int flags = O_WRONLY | O_CREAT | (truncate ? O_TRUNC : O_APPEND);
    fd_ = ::open(path.c_str(), flags, 0644);
    fatalIf(fd_ < 0, "cannot open journal ", path, ": ",
            std::strerror(errno));
    if (truncate) {
        std::string header = std::string(kJournalHeader) + "\n";
        detail::writeFd(fd_, "journal " + path_, header.data(), header.size());
        if (fsync_)
            ::fsync(fd_);
    }
}

JournalWriter::~JournalWriter()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
JournalWriter::append(const JournalRecord &rec)
{
    std::string line = renderJournalRecord(rec);
    detail::writeFd(fd_, "journal " + path_, line.data(), line.size());
    if (fsync_)
        ::fsync(fd_);
}

ResumePlan
loadResumePlan(const std::string &outPath,
               const std::vector<JobSpec> &specs)
{
    ResumePlan plan;
    plan.committed.assign(specs.size(), false);

    const std::string journal_path = outPath + ".journal";
    const std::string part_path = outPath + ".part";
    std::error_code ec;
    if (!fs::exists(journal_path, ec))
        return plan;

    JournalLoad journal = loadJournal(journal_path);
    plan.repairedTail = journal.tornTail;

    // Split the part file into complete lines; a final line without
    // its newline is a torn append and drops with its record.
    std::vector<std::string> lines;
    std::vector<std::uint64_t> line_ends;
    {
        std::ifstream in(part_path, std::ios::binary);
        std::string text;
        if (in) {
            std::ostringstream buf;
            buf << in.rdbuf();
            text = buf.str();
        }
        std::string::size_type at = 0;
        while (at < text.size()) {
            std::string::size_type end = text.find('\n', at);
            if (end == std::string::npos) {
                plan.repairedTail = true;
                break;
            }
            lines.push_back(text.substr(at, end - at));
            line_ends.push_back(end + 1);
            at = end + 1;
        }
    }

    // A job is committed only when record and line are both intact
    // and agree; the shorter side bounds the committed prefix.
    std::size_t usable = std::min(journal.records.size(), lines.size());
    if (usable != journal.records.size() || usable != lines.size())
        plan.repairedTail = true;
    for (std::size_t i = 0; i < usable; i++) {
        if (fnv1a(lines[i]) == journal.records[i].digest)
            continue;
        // A mismatch on the very last intact pair is a tail torn
        // across both files; anything earlier means the output no
        // longer matches what the journal committed.
        fatalIf(i + 1 < usable, "resume: ", outPath + ".part",
                " line ", i, " does not match journal ", journal_path,
                " record for job ", journal.records[i].job,
                " (digest mismatch)");
        usable = i;
        plan.repairedTail = true;
    }

    for (std::size_t i = 0; i < usable; i++) {
        const JournalRecord &rec = journal.records[i];
        fatalIf(rec.job >= specs.size(), "resume: journal ",
                journal_path, " record ", i, " names job ", rec.job,
                " but the batch has only ", specs.size(), " jobs");
        const JobSpec &spec = specs[rec.job];
        fatalIf(spec.canonicalKey() != rec.key,
                "resume: spec drift at job ", rec.job, " (",
                spec.displayName(), "): journal ", journal_path,
                " committed key ", rec.key, " but the spec is now ",
                spec.canonicalKey());
        fatalIf(plan.committed[rec.job], "journal ", journal_path,
                ": duplicate record for job ", rec.job, " (",
                spec.displayName(), ")");
        plan.committed[rec.job] = true;
        plan.lines.emplace_back(static_cast<std::size_t>(rec.job),
                                lines[i]);
    }
    plan.committedCount = usable;

    // Heal: truncate both files back to the committed prefix so the
    // resumed run appends from a clean boundary.
    if (usable == 0) {
        fs::remove(journal_path, ec);
        fs::remove(part_path, ec);
        return plan;
    }
    fs::resize_file(journal_path, journal.recordEnds[usable - 1], ec);
    fatalIf(static_cast<bool>(ec), "resume: cannot truncate journal ",
            journal_path, ": ", ec.message());
    fs::resize_file(part_path, line_ends[usable - 1], ec);
    fatalIf(static_cast<bool>(ec), "resume: cannot truncate ",
            part_path, ": ", ec.message());
    return plan;
}

} // namespace cdpc::runner
