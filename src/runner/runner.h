/**
 * @file
 * Umbrella header for the batch-execution subsystem (src/runner/):
 * JobSpec/JobResult, the work-stealing ThreadPool, the in-order
 * Batch API, rate-limited progress reporting and the JSON-lines
 * result sink. See DESIGN.md, "Batch runner".
 */

#ifndef CDPC_RUNNER_RUNNER_H
#define CDPC_RUNNER_RUNNER_H

#include "runner/batch.h"
#include "runner/job.h"
#include "runner/progress.h"
#include "runner/result_sink.h"
#include "runner/thread_pool.h"

#endif // CDPC_RUNNER_RUNNER_H
