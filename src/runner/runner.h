/**
 * @file
 * Umbrella header for the batch-execution subsystem (src/runner/):
 * JobSpec/JobResult, the work-stealing ThreadPool, the in-order
 * Batch API, rate-limited progress reporting, the JSON-lines result
 * sinks (streaming and crash-safe durable), and the resumable job
 * journal. See DESIGN.md, "Batch runner" and §13.
 */

#ifndef CDPC_RUNNER_RUNNER_H
#define CDPC_RUNNER_RUNNER_H

#include "runner/batch.h"
#include "runner/job.h"
#include "runner/journal.h"
#include "runner/progress.h"
#include "runner/result_sink.h"
#include "runner/thread_pool.h"

#endif // CDPC_RUNNER_RUNNER_H
