#include "runner/job.h"

#include <chrono>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>

#include "common/digest.h"
#include "common/faultpoint.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cdpc::runner
{

std::string
JobSpec::displayName() const
{
    if (!name.empty())
        return name;
    return workload + "/" + mappingName(config.mapping) + "/" +
           std::to_string(config.machine.numCpus) + "cpu";
}

std::string
JobSpec::canonicalKey() const
{
    // Everything that determines the job's output line goes into the
    // blob; the key is its digest, so adding a field later changes
    // every key (forcing a fresh run) rather than mis-skipping.
    std::ostringstream os;
    const ExperimentConfig &c = config;
    const MachineConfig &m = c.machine;
    os << "workload=" << workload << ";mapping="
       << mappingName(c.mapping) << ";machine=" << m.name << ";cpus="
       << m.numCpus << ";l2=" << m.l2.sizeBytes << "/" << m.l2.assoc
       << "/" << m.l2.lineBytes << ";l1d=" << m.l1d.sizeBytes << "/"
       << m.l1d.assoc << "/" << m.l1d.lineBytes << ";page="
       << m.pageBytes << ";phys=" << m.physPages << ";aligned="
       << c.aligned << ";prefetch=" << c.prefetch << ";racy="
       << c.binHopRacy << ";cyclic=" << c.cdpcOptions.cyclicAssignment
       << ";greedy=" << c.cdpcOptions.greedyOrdering << ";seed="
       << c.seed << ";prealloc=" << c.preallocatedPages << ";dynamic="
       << c.dynamicRecolor << ";pressure=" << c.pressure.occupancy
       << "/" << pressurePatternName(c.pressure.pattern) << "/"
       << c.pressure.seed << ";fallback=" << fallbackName(c.fallback)
       << ";interval=" << c.sim.statsInterval << ";verify="
       << c.verifyEvery << ";audit=" << c.auditEvery << ";trace="
       << trace << ";tags=";
    for (const std::string &tag : tags)
        os << tag << ",";
    return displayName() + "@" + digestHex(fnv1a(os.str()));
}

JobSpec
makeJob(std::string workload, ExperimentConfig config,
        std::vector<std::string> tags)
{
    JobSpec spec;
    spec.workload = std::move(workload);
    spec.config = std::move(config);
    spec.tags = std::move(tags);
    return spec;
}

const char *
jobOutcomeName(JobOutcome outcome)
{
    switch (outcome) {
      case JobOutcome::Ok:
        return "ok";
      case JobOutcome::Failed:
        return "failed";
      case JobOutcome::TimedOut:
        return "timeout";
      case JobOutcome::Skipped:
        return "skipped";
      case JobOutcome::Cancelled:
        return "cancelled";
    }
    return "unknown";
}

std::uint64_t
deriveJobSeed(std::uint64_t base, std::uint64_t index)
{
    // splitmix64: advance by the golden-ratio increment per index,
    // then finalize. Distinct (base, index) pairs give uncorrelated
    // seeds, and index 0 with base b never collides with index 1 of
    // base b-1's stream the way plain base+index would.
    std::uint64_t z = base + (index + 1) * 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

JobResult
runJob(const JobSpec &spec, std::size_t index)
{
    JobResult res;
    res.index = index;
    res.spec = spec;
    // Route this thread's trace events (including the executor
    // thread's, under a watchdog) to the job's track.
    obs::ScopedJobTrace job_trace(static_cast<int>(index) + 1,
                                  spec.trace, spec.displayName());
    auto start = std::chrono::steady_clock::now();
    try {
        faultPoint("job.run#" + spec.displayName());
        res.result = runWorkload(spec.workload, spec.config);
        res.outcome = JobOutcome::Ok;
    } catch (const TransientError &e) {
        res.error = e.what();
        res.errorKind = "transient";
        res.outcome = JobOutcome::Failed;
    } catch (const FatalError &e) {
        res.error = e.what();
        res.errorKind = "fatal";
        res.outcome = JobOutcome::Failed;
    } catch (const PanicError &e) {
        res.error = e.what();
        res.errorKind = "panic";
        res.outcome = JobOutcome::Failed;
    } catch (const std::exception &e) {
        res.error = e.what();
        res.errorKind = "error";
        res.outcome = JobOutcome::Failed;
    } catch (...) {
        res.error = "unknown exception";
        res.errorKind = "error";
        res.outcome = JobOutcome::Failed;
    }
    res.hostSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    return res;
}

namespace
{

/** Shared between a watched attempt and its watchdog. */
struct AttemptState
{
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    JobResult result;
    /** Set by the watchdog; polled by cooperative fault points. */
    std::atomic<bool> cancel{false};
};

/** Threads the watchdog gave up on, kept joinable (leaked on exit
 * so a truly hung thread never trips ~thread's terminate). */
struct AbandonedThreads
{
    std::mutex mutex;
    std::vector<std::pair<std::thread, std::shared_ptr<AttemptState>>>
        threads;
};

AbandonedThreads &
abandonedThreads()
{
    static AbandonedThreads *reg = new AbandonedThreads;
    return *reg;
}

/** One attempt on a watched thread; JobOutcome::TimedOut on expiry. */
JobResult
runAttemptWatched(const JobSpec &spec, std::size_t index,
                  double timeout_seconds)
{
    auto state = std::make_shared<AttemptState>();
    std::thread executor([state, spec, index] {
        faultpoints::setCancelFlag(&state->cancel);
        JobResult r = runJob(spec, index);
        faultpoints::setCancelFlag(nullptr);
        {
            std::lock_guard<std::mutex> lock(state->mutex);
            state->result = std::move(r);
            state->done = true;
        }
        state->cv.notify_all();
    });

    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(timeout_seconds));
    std::unique_lock<std::mutex> lock(state->mutex);
    if (state->cv.wait_until(lock, deadline,
                             [&] { return state->done; })) {
        lock.unlock();
        executor.join();
        return std::move(state->result);
    }

    // Expired: ask the attempt to cancel cooperatively, give it a
    // short grace period, then abandon its thread.
    state->cancel.store(true, std::memory_order_relaxed);
    bool finished = state->cv.wait_for(
        lock, std::chrono::milliseconds(250),
        [&] { return state->done; });
    lock.unlock();
    if (finished) {
        executor.join();
    } else {
        AbandonedThreads &reg = abandonedThreads();
        std::lock_guard<std::mutex> reg_lock(reg.mutex);
        reg.threads.emplace_back(std::move(executor), state);
    }

    JobResult res;
    res.index = index;
    res.spec = spec;
    res.outcome = JobOutcome::TimedOut;
    res.errorKind = "timeout";
    res.error = "attempt exceeded " +
                std::to_string(timeout_seconds) + "s timeout";
    res.hostSeconds = timeout_seconds;
    return res;
}

} // namespace

void
joinAbandonedJobThreads()
{
    AbandonedThreads &reg = abandonedThreads();
    std::lock_guard<std::mutex> reg_lock(reg.mutex);
    for (auto it = reg.threads.begin(); it != reg.threads.end();) {
        bool done;
        {
            std::lock_guard<std::mutex> lock(it->second->mutex);
            done = it->second->done;
        }
        if (done) {
            it->first.join();
            it = reg.threads.erase(it);
        } else {
            ++it;
        }
    }
}

JobResult
runJobWithPolicy(const JobSpec &spec, std::size_t index,
                 const RunPolicy &policy)
{
    const int pid = static_cast<int>(index) + 1;
    double total_seconds = 0.0;
    for (std::uint32_t attempt = 1;; attempt++) {
        // The attempt span is emitted from this (watchdog) thread so
        // B/E stay balanced even when the executor is abandoned.
        obs::runnerBegin("attempt", pid,
                         {{"attempt", attempt},
                          {"job", spec.displayName()}});
        JobResult r = policy.timeoutSeconds > 0.0
                          ? runAttemptWatched(spec, index,
                                              policy.timeoutSeconds)
                          : runJob(spec, index);
        obs::runnerEnd("attempt", pid);
        total_seconds += r.hostSeconds;
        r.attempts = attempt;
        r.hostSeconds = total_seconds;
        bool retryable = !r.ok() && r.errorKind == "transient";
        if (!retryable || attempt > policy.maxRetries) {
            CDPC_METRIC_COUNT("runner.jobs", 1);
            CDPC_METRIC_COUNT("runner.attempts", attempt);
            CDPC_METRIC_OBSERVE(
                "runner.job_ms",
                static_cast<std::uint64_t>(total_seconds * 1000.0));
            if (r.quarantined()) {
                CDPC_METRIC_COUNT("runner.quarantined", 1);
                obs::runnerInstant(
                    "quarantine", pid,
                    {{"outcome", jobOutcomeName(r.outcome)},
                     {"errorKind", r.errorKind}});
            }
            return r;
        }
        std::uint64_t backoff = static_cast<std::uint64_t>(
            policy.backoffMs) << (attempt - 1);
        backoff = std::min<std::uint64_t>(backoff, policy.maxBackoffMs);
        CDPC_METRIC_COUNT("runner.retries", 1);
        obs::runnerInstant("retry", pid,
                           {{"attempt", attempt},
                            {"backoffMs", backoff},
                            {"error", r.error}});
        if (backoff)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(backoff));
    }
}

} // namespace cdpc::runner
