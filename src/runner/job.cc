#include "runner/job.h"

#include <chrono>
#include <exception>

namespace cdpc::runner
{

std::string
JobSpec::displayName() const
{
    if (!name.empty())
        return name;
    return workload + "/" + mappingName(config.mapping) + "/" +
           std::to_string(config.machine.numCpus) + "cpu";
}

JobSpec
makeJob(std::string workload, ExperimentConfig config,
        std::vector<std::string> tags)
{
    JobSpec spec;
    spec.workload = std::move(workload);
    spec.config = std::move(config);
    spec.tags = std::move(tags);
    return spec;
}

std::uint64_t
deriveJobSeed(std::uint64_t base, std::uint64_t index)
{
    // splitmix64: advance by the golden-ratio increment per index,
    // then finalize. Distinct (base, index) pairs give uncorrelated
    // seeds, and index 0 with base b never collides with index 1 of
    // base b-1's stream the way plain base+index would.
    std::uint64_t z = base + (index + 1) * 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

JobResult
runJob(const JobSpec &spec, std::size_t index)
{
    JobResult res;
    res.index = index;
    res.spec = spec;
    auto start = std::chrono::steady_clock::now();
    try {
        res.result = runWorkload(spec.workload, spec.config);
    } catch (const std::exception &e) {
        res.error = e.what();
    } catch (...) {
        res.error = "unknown exception";
    }
    res.hostSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    return res;
}

} // namespace cdpc::runner
