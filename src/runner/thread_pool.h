/**
 * @file
 * A work-stealing thread pool for coarse-grained simulation jobs.
 *
 * Each worker owns a deque: it pushes and pops work at the back
 * (LIFO, cache-warm), and idle workers steal *half* of a victim's
 * deque from the front (FIFO, oldest first), which amortizes steal
 * traffic when job counts are large and balances the tail when a
 * few jobs run long. Workers with no work to run or steal park on a
 * condition variable rather than spinning, so an idle pool costs
 * nothing.
 *
 * Jobs here are whole simulations (milliseconds to seconds each), so
 * the deques are mutex-guarded rather than lock-free — the lock is
 * taken once per job, which is noise at this granularity, and keeps
 * the stealing logic obviously correct.
 */

#ifndef CDPC_RUNNER_THREAD_POOL_H
#define CDPC_RUNNER_THREAD_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace cdpc::runner
{

/** Counters for introspection and tests. */
struct ThreadPoolStats
{
    std::uint64_t submitted = 0;
    std::uint64_t executed = 0;
    /** Successful steal operations (each may move several tasks). */
    std::uint64_t steals = 0;
    /** Tasks moved between deques by steals. */
    std::uint64_t tasksStolen = 0;
    /** Times a worker parked on the condition variable. */
    std::uint64_t parks = 0;
};

class ThreadPool
{
  public:
    using Task = std::function<void()>;

    /** @param workers thread count; 0 means hardware_concurrency. */
    explicit ThreadPool(unsigned workers = 0);

    /** Drains all submitted work, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned workerCount() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /**
     * Enqueue @p task. Submissions from outside the pool are spread
     * round-robin over the worker deques; a worker submitting from
     * inside a task pushes to its own deque (LIFO locality).
     */
    void submit(Task task);

    /** Block until every submitted task has finished executing. */
    void waitIdle();

    /** Snapshot of the counters (racy while work is in flight). */
    ThreadPoolStats stats() const;

  private:
    struct Worker
    {
        std::mutex mutex;
        /** back = owner's end (LIFO); front = steal end (FIFO). */
        std::deque<Task> deque;
    };

    void workerLoop(unsigned self);
    bool popLocal(unsigned self, Task &out);
    bool stealInto(unsigned self, Task &out);
    void enqueueOn(unsigned victim, Task task);

    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<std::thread> threads_;

    /** Guards parking and the idle wait; counters are atomic. */
    mutable std::mutex parkMutex_;
    std::condition_variable parkCv_;
    std::condition_variable idleCv_;

    /** Tasks sitting in deques, not yet claimed by a worker. */
    std::atomic<std::size_t> unclaimed_{0};
    /** Tasks submitted and not yet finished executing. */
    std::atomic<std::size_t> pending_{0};
    std::atomic<bool> stop_{false};
    std::atomic<std::uint64_t> nextQueue_{0};

    std::atomic<std::uint64_t> submitted_{0};
    std::atomic<std::uint64_t> executed_{0};
    std::atomic<std::uint64_t> steals_{0};
    std::atomic<std::uint64_t> tasksStolen_{0};
    std::atomic<std::uint64_t> parks_{0};
};

/** The thread id a ThreadPool worker reports inside a task, or -1. */
int currentWorkerId();

} // namespace cdpc::runner

#endif // CDPC_RUNNER_THREAD_POOL_H
