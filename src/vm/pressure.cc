#include "vm/pressure.h"

#include <algorithm>

#include "common/logging.h"
#include "common/random.h"

namespace cdpc
{

const char *
pressurePatternName(PressurePattern p)
{
    switch (p) {
      case PressurePattern::LowHalf:
        return "low-half";
      case PressurePattern::Uniform:
        return "uniform";
      case PressurePattern::Fragmented:
        return "fragmented";
    }
    return "unknown";
}

PressurePattern
parsePressurePattern(const std::string &name)
{
    if (name == "low-half" || name == "lowhalf")
        return PressurePattern::LowHalf;
    if (name == "uniform")
        return PressurePattern::Uniform;
    if (name == "fragmented" || name == "fragment")
        return PressurePattern::Fragmented;
    fatal("unknown pressure pattern '", name,
          "' (want low-half|uniform|fragmented)");
}

namespace
{

/** Claim one page of @p c (or the nearest forward color). */
bool
claimOne(PhysMem &phys, Color c, PressureStats &stats)
{
    std::uint64_t colors = phys.numColors();
    for (std::uint64_t i = 0; i < colors; i++) {
        Color cc = static_cast<Color>((c + i) % colors);
        if (auto p = phys.tryAllocExact(cc)) {
            phys.markReclaimable(*p);
            stats.claimedPages++;
            stats.perColor[cc]++;
            return true;
        }
    }
    return false;
}

} // namespace

PressureStats
applyMemoryPressure(PhysMem &phys, const MemPressureConfig &config)
{
    fatalIf(config.occupancy < 0.0 || config.occupancy >= 1.0,
            "memory-pressure occupancy ", config.occupancy,
            " out of [0, 1)");
    std::uint64_t colors = phys.numColors();
    PressureStats stats;
    stats.perColor.assign(colors, 0);

    std::uint64_t target = static_cast<std::uint64_t>(
        config.occupancy * static_cast<double>(phys.totalPages()));
    if (target == 0)
        return stats;
    // Leave the application at least one page per color to start
    // from, matching the constructor's invariant.
    target = std::min(target, phys.freePages() - std::min(
        phys.freePages(), colors));

    Rng rng(config.seed);
    switch (config.pattern) {
      case PressurePattern::LowHalf: {
        std::uint64_t half = std::max<std::uint64_t>(colors / 2, 1);
        for (std::uint64_t i = 0; i < target; i++) {
            if (!claimOne(phys, static_cast<Color>(i % half), stats))
                break;
        }
        break;
      }
      case PressurePattern::Uniform: {
        for (std::uint64_t i = 0; i < target; i++) {
            Color c = static_cast<Color>(rng.below(colors));
            if (!claimOne(phys, c, stats))
                break;
        }
        break;
      }
      case PressurePattern::Fragmented: {
        // Walk the color space in random strides, draining a
        // random-length run of colors nearly dry at each stop.
        std::uint64_t claimed = 0;
        Color cursor = static_cast<Color>(rng.below(colors));
        while (claimed < target) {
            std::uint64_t run = 1 + rng.below(std::max<std::uint64_t>(
                colors / 16, 2));
            for (std::uint64_t r = 0; r < run && claimed < target;
                 r++) {
                Color c = static_cast<Color>((cursor + r) % colors);
                // Drain this color down to one free page.
                while (claimed < target &&
                       phys.freePagesOfColor(c) > 1) {
                    if (!claimOne(phys, c, stats))
                        return stats;
                    claimed++;
                }
            }
            cursor = static_cast<Color>(
                (cursor + run + rng.below(colors)) % colors);
        }
        break;
      }
    }
    return stats;
}

} // namespace cdpc
