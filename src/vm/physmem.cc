#include "vm/physmem.h"

#include "common/logging.h"

namespace cdpc
{

PhysMem::PhysMem(std::uint64_t num_pages, std::uint64_t num_colors)
    : numPages(num_pages), colors(num_colors), freeCount(num_pages),
      freeLists(num_colors)
{
    fatalIf(num_colors == 0, "PhysMem needs at least one color");
    fatalIf(num_pages < num_colors,
            "PhysMem needs at least one page per color");
    for (auto &list : freeLists)
        list.reserve(num_pages / num_colors + 1);
    // Populate free lists high-to-low so that allocation order within a
    // color is ascending physical page number (pop from the back).
    for (std::uint64_t p = num_pages; p-- > 0;)
        freeLists[p % colors].push_back(p);
}

PageNum
PhysMem::alloc(Color preferred)
{
    fatalIf(freeCount == 0, "physical memory exhausted");
    stats_.allocs++;

    Color start;
    if (preferred == kNoColor) {
        stats_.noPreference++;
        start = rotor;
        rotor = static_cast<Color>((rotor + 1) % colors);
    } else {
        panicIfNot(preferred < colors, "preferred color ", preferred,
                   " out of range (", colors, " colors)");
        start = preferred;
    }

    for (std::uint64_t i = 0; i < colors; i++) {
        Color c = static_cast<Color>((start + i) % colors);
        if (!freeLists[c].empty()) {
            PageNum ppn = freeLists[c].back();
            freeLists[c].pop_back();
            freeCount--;
            if (preferred != kNoColor) {
                if (i == 0)
                    stats_.preferredHonored++;
                else
                    stats_.preferredDenied++;
            }
            return ppn;
        }
    }
    panic("free list inconsistency: freeCount=", freeCount,
          " but all color lists empty");
}

void
PhysMem::free(PageNum ppn)
{
    panicIfNot(ppn < numPages, "freeing out-of-range page ", ppn);
    freeLists[ppn % colors].push_back(ppn);
    freeCount++;
    panicIfNot(freeCount <= numPages, "double free detected");
}

Color
PhysMem::colorOf(PageNum ppn) const
{
    panicIfNot(ppn < numPages, "colorOf out-of-range page ", ppn);
    return static_cast<Color>(ppn % colors);
}

std::uint64_t
PhysMem::freePagesOfColor(Color c) const
{
    panicIfNot(c < colors, "color out of range");
    return freeLists[c].size();
}

} // namespace cdpc
