#include "vm/physmem.h"

#include "common/faultpoint.h"
#include "common/logging.h"

namespace cdpc
{

PhysMem::PhysMem(std::uint64_t num_pages, const IndexFunction &index)
    : numPages(num_pages), idx(index), colors(index.numColors()),
      freeCount(num_pages), freeLists(colors), reclaimable(colors),
      isFree(num_pages, 1)
{
    fatalIf(num_pages < colors,
            "PhysMem needs at least one page per color");
    for (auto &list : freeLists)
        list.reserve(num_pages / colors + 1);
    // Populate free lists high-to-low so that allocation order within a
    // color is ascending physical page number (pop from the back).
    for (std::uint64_t p = num_pages; p-- > 0;)
        freeLists[colorOf(p)].push_back(p);
}

PageNum
PhysMem::takeFrom(Color c)
{
    PageNum ppn = freeLists[c].back();
    freeLists[c].pop_back();
    freeCount--;
    isFree[ppn] = 0;
    stats_.allocs++;
    return ppn;
}

PageNum
PhysMem::alloc(Color preferred)
{
    faultPoint("physmem.alloc");
    fatalIf(freeCount == 0, "physical memory exhausted");

    Color start;
    if (preferred == kNoColor) {
        stats_.noPreference++;
        start = rotor;
        rotor = static_cast<Color>((rotor + 1) % colors);
    } else {
        panicIfNot(preferred < colors, "preferred color ", preferred,
                   " out of range (", colors, " colors)");
        start = preferred;
    }

    for (std::uint64_t i = 0; i < colors; i++) {
        Color c = static_cast<Color>((start + i) % colors);
        if (!freeLists[c].empty()) {
            if (preferred != kNoColor) {
                if (i == 0)
                    stats_.preferredHonored++;
                else
                    stats_.preferredDenied++;
            }
            return takeFrom(c);
        }
    }
    panic("free list inconsistency: freeCount=", freeCount,
          " but all color lists empty");
}

std::optional<PageNum>
PhysMem::tryAllocExact(Color c)
{
    faultPoint("physmem.alloc");
    panicIfNot(c < colors, "preferred color ", c, " out of range (",
               colors, " colors)");
    if (freeLists[c].empty())
        return std::nullopt;
    return takeFrom(c);
}

std::optional<PageNum>
PhysMem::tryAllocAny()
{
    faultPoint("physmem.alloc");
    if (freeCount == 0)
        return std::nullopt;
    Color start = rotor;
    rotor = static_cast<Color>((rotor + 1) % colors);
    for (std::uint64_t i = 0; i < colors; i++) {
        Color c = static_cast<Color>((start + i) % colors);
        if (!freeLists[c].empty())
            return takeFrom(c);
    }
    panic("free list inconsistency: freeCount=", freeCount,
          " but all color lists empty");
}

void
PhysMem::free(PageNum ppn)
{
    panicIfNot(ppn < numPages, "freeing out-of-range page ", ppn);
    panicIfNot(!isFree[ppn], "double free of physical page ", ppn);
    isFree[ppn] = 1;
    freeLists[colorOf(ppn)].push_back(ppn);
    freeCount++;
}

void
PhysMem::markReclaimable(PageNum ppn)
{
    panicIfNot(ppn < numPages, "reclaimable out-of-range page ", ppn);
    panicIfNot(!isFree[ppn], "reclaimable page ", ppn,
               " is on a free list");
    reclaimable[colorOf(ppn)].push_back(ppn);
    reclaimableCount++;
}

std::optional<PageNum>
PhysMem::reclaim(Color preferred)
{
    if (reclaimableCount == 0)
        return std::nullopt;
    Color start = preferred == kNoColor ? 0 : preferred;
    panicIfNot(start < colors, "reclaim color ", preferred,
               " out of range");
    for (std::uint64_t i = 0; i < colors; i++) {
        Color c = static_cast<Color>((start + i) % colors);
        if (!reclaimable[c].empty()) {
            PageNum ppn = reclaimable[c].back();
            reclaimable[c].pop_back();
            reclaimableCount--;
            stats_.reclaimed++;
            return ppn;
        }
    }
    panic("reclaimable count ", reclaimableCount,
          " but all color lists empty");
}

std::uint64_t
PhysMem::freePagesOfColor(Color c) const
{
    panicIfNot(c < colors, "color out of range");
    return freeLists[c].size();
}

} // namespace cdpc
