/**
 * @file
 * Deterministic memory-pressure generation: simulated competitor
 * processes that pre-claim physical pages before the application
 * runs, so the kernel genuinely cannot honor every CDPC hint.
 *
 * The paper evaluates CDPC on an unloaded machine but is explicit
 * that hints survive only "when possible" under memory pressure
 * (Sections 2.1, 5); related work (cache apportioning under
 * co-runners, cloud color-pool fragmentation) shows loaded machines
 * are the common case. applyMemoryPressure() claims a configurable
 * fraction of physical memory in one of several color-occupancy
 * patterns, fully determined by the seed, and marks every claimed
 * page reclaimable — the last-ditch path that keeps experiments
 * finishing at 95%+ occupancy instead of dying.
 */

#ifndef CDPC_VM_PRESSURE_H
#define CDPC_VM_PRESSURE_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "vm/physmem.h"

namespace cdpc
{

/** How competitor pages are spread over the color space. */
enum class PressurePattern
{
    /** Concentrated on the lower half of the colors (legacy model). */
    LowHalf,
    /** Seeded-uniform over all colors. */
    Uniform,
    /**
     * Fragmented: random-length runs of whole colors are claimed
     * nearly dry while others stay almost untouched — the
     * color-pool fragmentation long-running systems accumulate.
     */
    Fragmented,
};

/** @return "low-half" | "uniform" | "fragmented". */
const char *pressurePatternName(PressurePattern p);

/** Parse a pattern name; fatal() on an unknown one. */
PressurePattern parsePressurePattern(const std::string &name);

/** Competitor-process configuration. */
struct MemPressureConfig
{
    /** Fraction of physical pages to pre-claim, in [0, 1). */
    double occupancy = 0.0;
    PressurePattern pattern = PressurePattern::Fragmented;
    std::uint64_t seed = 1;

    bool enabled() const { return occupancy > 0.0; }
};

/** What applyMemoryPressure() actually claimed. */
struct PressureStats
{
    std::uint64_t claimedPages = 0;
    /** Pages claimed per color (the occupancy fingerprint). */
    std::vector<std::uint64_t> perColor;
};

/**
 * Claim occupancy * totalPages pages from @p phys according to the
 * pattern, marking each claimed page reclaimable. Deterministic: the
 * same (config, allocator state) always claims the same pages.
 * fatal() when occupancy is out of [0, 1).
 */
PressureStats applyMemoryPressure(PhysMem &phys,
                                  const MemPressureConfig &config);

} // namespace cdpc

#endif // CDPC_VM_PRESSURE_H
