/**
 * @file
 * VirtualMemory: the OS view of one application's address space.
 *
 * Holds the page table, services page faults by asking the active
 * PageMappingPolicy for a preferred color and the PhysMem allocator
 * for a page, and exposes the color of every mapped page to the
 * cache model. Also provides touch(), the serialized pre-faulting
 * primitive the paper uses to implement page coloring and CDPC on
 * top of Digital UNIX's native bin hopping (Section 5.3).
 *
 * Under memory pressure the preferred color may have no free page;
 * an optional ColorFallbackPolicy then decides what the fault gets
 * instead, and per-fault degradation statistics (hint honored /
 * fallback / reclaimed / stolen) are recorded for the harness.
 *
 * The page table is a segment-aware dense PageTable (vm/page_table.h)
 * rather than a hash map, and every mutation of an *existing*
 * mapping (remap, steal, unmapAll) bumps a generation counter.
 * MemorySystem's per-CPU translation micro-cache memoizes
 * vpn -> physical-page-base tagged with that generation, so a
 * memoized translation is valid exactly while the generation is
 * unchanged — new mappings never invalidate other pages'
 * translations and do not bump it.
 */

#ifndef CDPC_VM_VIRTUAL_MEMORY_H
#define CDPC_VM_VIRTUAL_MEMORY_H

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/types.h"
#include "machine/config.h"
#include "vm/fallback.h"
#include "vm/page_table.h"
#include "vm/physmem.h"
#include "vm/policy.h"

namespace cdpc
{

/** Per-address-space VM statistics. */
struct VmStats
{
    std::uint64_t translations = 0;
    std::uint64_t pageFaults = 0;
    /** Faults whose preferred color was free (hint honored). */
    std::uint64_t hintHonored = 0;
    /** Faults served a different color by the fallback policy. */
    std::uint64_t hintFallback = 0;
    /** Faults that could not be served at all (exhaustion). */
    std::uint64_t hintDenied = 0;
    /** Faults that expressed no color preference. */
    std::uint64_t noPreference = 0;
    /** Faults served by recoloring one of our own pages (steal). */
    std::uint64_t hintStolen = 0;
    /** Faults served by reclaiming a competitor page. */
    std::uint64_t reclaimedPages = 0;
};

/** Result of a translation: physical address plus fault indicator. */
struct Translation
{
    PAddr pa = 0;
    /** True when this translation had to allocate the page. */
    bool faulted = false;
};

/** Page table + fault handler for a single simulated application. */
class VirtualMemory
{
  public:
    /**
     * @param config machine parameters (page size, colors)
     * @param phys physical allocator (not owned)
     * @param policy active page mapping policy (not owned)
     * @param fallback pressure fallback, or nullptr for the legacy
     *        forward scan (not owned; must outlive this object)
     */
    VirtualMemory(const MachineConfig &config, PhysMem &phys,
                  PageMappingPolicy &policy,
                  ColorFallbackPolicy *fallback = nullptr);

    /**
     * Translate @p va, taking a page fault if needed.
     *
     * @param va virtual address
     * @param cpu the accessing CPU (fault attribution)
     * @param concurrent_faults how many CPUs are faulting at once
     *        (feeds the bin-hopping race model)
     */
    Translation translate(VAddr va, CpuId cpu,
                          std::uint32_t concurrent_faults = 1);

    /** Translation that never faults; nullopt when unmapped. */
    std::optional<PAddr> translateIfMapped(VAddr va) const;

    /** Pre-fault one page (the Digital UNIX touch-order trick). */
    void touch(VAddr va, CpuId cpu);

    /** @return true when the page holding @p va is mapped. */
    bool isMapped(VAddr va) const;

    /** @return the cache color of the (mapped) page holding @p va. */
    Color colorOf(VAddr va) const;

    /**
     * Recolor a mapped page: allocate a page of @p target color,
     * switch the mapping and free the old page (the dynamic-policy
     * remap primitive; the caller is responsible for cache purges
     * and TLB shootdowns).
     * @return the new color, or nullopt when the page is unmapped.
     */
    std::optional<Color> remap(PageNum vpn, Color target);

    /**
     * Steal a mapped page of @p color for a new allocation: move the
     * lowest-vpn victim currently occupying that color onto a donor
     * page of some free color, notify the remap observer (cache
     * purge + TLB shootdown), and return the freed right-colored
     * page. @return nullopt when there is no donor or no victim.
     */
    std::optional<PageNum> stealMappedPage(Color color);

    /**
     * Install (or clear, with nullptr) the hook called with the
     * victim vpn whenever stealMappedPage() rewrites a mapping —
     * the harness points it at MemorySystem::purgePage().
     */
    void setRemapObserver(std::function<void(PageNum)> obs);

    /** Unmap everything and return the pages to the allocator. */
    void unmapAll();

    std::uint64_t pageBytes() const { return pageSize; }
    std::uint64_t numColors() const { return phys.numColors(); }
    PageNum vpnOf(VAddr va) const { return va >> pageShift; }
    std::uint64_t mappedPages() const { return pageTable.size(); }

    /**
     * Mapped-page count per cache color — the color-occupancy
     * profile of this address space (interval snapshots; O(mapped)).
     */
    std::vector<std::uint32_t> mappedPagesPerColor() const;

    /**
     * Visit every mapping in ascending vpn order; fn(vpn, ppn). The
     * differential verifier uses this to resynchronize its shadow
     * page table whenever generation() moves.
     */
    template <typename F>
    void
    forEachMapping(F &&fn) const
    {
        pageTable.forEach(std::forward<F>(fn));
    }

    /**
     * Audit the page table's structural invariants (segment order,
     * disjointness, mapped count); panic()s on violation.
     */
    void auditPageTable() const { pageTable.audit(); }

    /**
     * Mapping-mutation generation: bumped whenever an existing
     * vpn -> ppn binding changes or disappears (remap, steal,
     * unmapAll). A memoized translation made at generation G is
     * valid exactly while generation() == G.
     */
    std::uint64_t generation() const { return generation_; }

    /**
     * Account one translation served from a caller-side memo (the
     * MemorySystem micro-cache) so stats stay identical to calling
     * translate(). Memoized translations are by construction mapped
     * and fault-free.
     */
    void noteMemoizedTranslation() { stats_.translations++; }

    /**
     * Bulk form of noteMemoizedTranslation(): the epoch-parallel
     * engine counts memo hits per CPU during a parallel phase and
     * commits them at the barrier, in one call, so the shared counter
     * is never touched concurrently yet ends at the same value the
     * serial interleave produces.
     */
    void noteMemoizedTranslations(std::uint64_t n)
    {
        stats_.translations += n;
    }

    /**
     * True when the installed fallback policy may remap pages the
     * application already has mapped (FallbackKind::Steal). See
     * ColorFallbackPolicy::mayStealMappedPages().
     */
    bool fallbackMaySteal() const
    {
        return fallback_ && fallback_->mayStealMappedPages();
    }

    const VmStats &stats() const { return stats_; }
    PageMappingPolicy &policy() { return policy_; }

  private:
    PageNum allocWithFallback(Color preferred);

    PhysMem &phys;
    PageMappingPolicy &policy_;
    ColorFallbackPolicy *fallback_;
    std::function<void(PageNum)> remapObserver_;
    std::uint64_t pageSize;
    unsigned pageShift;
    PageTable pageTable;
    std::uint64_t generation_ = 0;
    VmStats stats_;
};

} // namespace cdpc

#endif // CDPC_VM_VIRTUAL_MEMORY_H
