/**
 * @file
 * Color fallback policies: what the OS does when a page fault's
 * preferred color has no free page.
 *
 * The paper treats CDPC output as a hint the kernel honors "when
 * possible" (Sections 2.1, 5). This module models the "when it is
 * not possible" half. A ColorFallbackPolicy is consulted only after
 * an exact-color allocation failed; it decides which wrong-colored
 * page (or, for the stealing policy, which recolored right-colored
 * page) the fault gets instead:
 *
 *  - any-color:     first free color scanning forward from the
 *                   preferred one (the classic IRIX behavior, and
 *                   this simulator's historical semantics);
 *  - nearest-color: free color at the smallest ring distance from
 *                   the preferred one, minimizing how far the page
 *                   lands from its intended cache bins;
 *  - steal:         recolor one of the application's own pages that
 *                   currently occupies the preferred color onto a
 *                   donor page of a free color (the mem/recolor
 *                   remap primitive), then hand the freed
 *                   right-colored page to the faulting request.
 *
 * Every policy degrades to reclaiming competitor pages
 * (PhysMem::reclaim) before giving up, so fallback only fails when
 * the application itself has consumed all of physical memory.
 */

#ifndef CDPC_VM_FALLBACK_H
#define CDPC_VM_FALLBACK_H

#include <memory>
#include <optional>
#include <string>

#include "common/types.h"
#include "vm/physmem.h"

namespace cdpc
{

class VirtualMemory;

/** Selects a ColorFallbackPolicy implementation. */
enum class FallbackKind
{
    /** Scan forward from the preferred color (legacy behavior). */
    AnyColor,
    /** Smallest ring distance from the preferred color. */
    NearestColor,
    /** Recolor an own page out of the preferred color and take it. */
    Steal,
};

/** @return "any" | "nearest" | "steal". */
const char *fallbackName(FallbackKind kind);

/** Parse a --fallback value; fatal() on an unknown name. */
FallbackKind parseFallback(const std::string &name);

/** Strategy interface for pressure-time allocation. */
class ColorFallbackPolicy
{
  public:
    virtual ~ColorFallbackPolicy() = default;

    /**
     * Allocate a page after the preferred color came up empty.
     *
     * @param phys the allocator
     * @param vm the faulting address space, or nullptr when page
     *        stealing is impossible (no mappings to recolor)
     * @param preferred the color the fault wanted (never kNoColor)
     * @return a page, or nullopt when memory is truly exhausted
     */
    virtual std::optional<PageNum> allocFallback(PhysMem &phys,
                                                 VirtualMemory *vm,
                                                 Color preferred) = 0;

    virtual const char *name() const = 0;

    /**
     * True when a fallback allocation may remap (recolor) pages the
     * application already has mapped, invalidating cached lines and
     * translations for addresses *other* than the faulting one. The
     * epoch-parallel engine must know: a policy that can steal makes
     * every boundary fault a potential cross-CPU purge, so page
     * privacy proofs cannot be trusted across a fault and the nest
     * degrades to the serial interleave.
     */
    virtual bool mayStealMappedPages() const { return false; }
};

/** @return a fresh policy instance of @p kind. */
std::unique_ptr<ColorFallbackPolicy> makeFallbackPolicy(
    FallbackKind kind);

} // namespace cdpc

#endif // CDPC_VM_FALLBACK_H
