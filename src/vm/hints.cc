#include "vm/hints.h"

#include "common/logging.h"

namespace cdpc
{

CdpcHintPolicy::CdpcHintPolicy(PageMappingPolicy &fallback)
    : fallback(fallback)
{}

void
CdpcHintPolicy::madviseColors(const std::vector<ColorHint> &hints)
{
    table.reserve(table.size() + hints.size());
    for (const ColorHint &h : hints)
        table[h.vpn] = h.color;
}

void
CdpcHintPolicy::clearHints()
{
    table.clear();
}

Color
CdpcHintPolicy::preferredColor(const FaultContext &ctx)
{
    auto it = table.find(ctx.vpn);
    if (it != table.end()) {
        hinted++;
        return it->second;
    }
    unhinted++;
    return fallback.preferredColor(ctx);
}

std::string
CdpcHintPolicy::name() const
{
    return "cdpc(" + fallback.name() + ")";
}

void
CdpcHintPolicy::reset()
{
    hinted = 0;
    unhinted = 0;
    fallback.reset();
}

} // namespace cdpc
