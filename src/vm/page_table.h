/**
 * @file
 * PageTable: a segment-aware dense page table.
 *
 * Workload address spaces in this reproduction are a handful of
 * contiguous ranges (a text segment and one data segment of
 * line-packed arrays — see ir/layout.h), so the vpn -> ppn map is
 * stored as a short sorted list of dense segments, each a
 * std::vector indexed by (vpn - base), instead of an unordered_map.
 * A translation is then: one (cached) segment range check plus one
 * vector load — no hashing, no node chasing — which is what the
 * per-reference fast path in MemorySystem leans on.
 *
 * Faulting a vpn near an existing segment extends it (up to a gap
 * threshold, holes filled with kUnmapped); a distant vpn starts a
 * new segment; segments that grow into each other merge. Backward
 * growth keeps amortized-constant front slack so descending-order
 * fault patterns do not go quadratic.
 */

#ifndef CDPC_VM_PAGE_TABLE_H
#define CDPC_VM_PAGE_TABLE_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.h"

namespace cdpc
{

/** Sorted-segment dense map from virtual to physical page numbers. */
class PageTable
{
  public:
    /** Sentinel for "no mapping". */
    static constexpr PageNum kUnmapped = ~PageNum{0};

    /** Largest hole (in pages) bridged by extending a segment. */
    static constexpr PageNum kMaxGap = 256;

    /** @return the ppn mapped at @p vpn, or kUnmapped. */
    PageNum
    lookup(PageNum vpn) const
    {
        // The last-hit segment catches nearly every translation: the
        // simulated loops walk one or two ranges at a time.
        if (lastSeg < segs.size()) {
            const Segment &s = segs[lastSeg];
            if (vpn >= s.base && vpn - s.base < s.ppns.size())
                return s.ppns[vpn - s.base];
        }
        return lookupSlow(vpn);
    }

    bool mapped(PageNum vpn) const { return lookup(vpn) != kUnmapped; }

    /**
     * @return pointer to the mapping slot for @p vpn (for remap), or
     *         nullptr when unmapped.
     */
    PageNum *slotOf(PageNum vpn);

    /**
     * Map @p vpn to @p ppn. @p vpn must currently be unmapped (the
     * fault handler only inserts after a failed lookup).
     */
    void insert(PageNum vpn, PageNum ppn);

    /** Number of live mappings. */
    std::uint64_t size() const { return mapped_; }

    /** Number of dense segments (observability/tests). */
    std::size_t segmentCount() const { return segs.size(); }

    /** Visit every mapping in ascending vpn order; fn(vpn, ppn). */
    template <typename F>
    void
    forEach(F &&fn) const
    {
        for (const Segment &s : segs) {
            for (std::size_t i = 0; i < s.ppns.size(); i++) {
                if (s.ppns[i] != kUnmapped)
                    fn(s.base + i, s.ppns[i]);
            }
        }
    }

    /** Drop every mapping. */
    void clear();

    /**
     * Audit structural invariants: segments sorted by base, strictly
     * disjoint, non-empty, and the live-mapping count consistent with
     * the dense arrays. panic()s on the first violation; used by the
     * cadence-driven runtime auditor (--audit-every).
     */
    void audit() const;

  private:
    struct Segment
    {
        PageNum base = 0;            ///< vpn of ppns[0]
        std::vector<PageNum> ppns;   ///< kUnmapped marks holes
    };

    PageNum lookupSlow(PageNum vpn) const;

    /** Index of the first segment with base > vpn. */
    std::size_t upperBound(PageNum vpn) const;

    /** Merge segs[i] with segs[i+1] when they touch or overlap-gap. */
    void mergeForward(std::size_t i);

    std::vector<Segment> segs; ///< sorted by base, disjoint
    std::uint64_t mapped_ = 0;
    mutable std::size_t lastSeg = 0;
};

} // namespace cdpc

#endif // CDPC_VM_PAGE_TABLE_H
