/**
 * @file
 * Page mapping policies.
 *
 * The operating system consults a PageMappingPolicy on every page
 * fault to pick a *preferred* cache color for the faulting virtual
 * page (paper, Section 2.1). The two policies shipped by commercial
 * systems at the time were:
 *
 *  - page coloring (IRIX, Windows NT): consecutive virtual pages get
 *    consecutive colors — exploits spatial locality;
 *  - bin hopping (Digital UNIX): colors are handed out cyclically in
 *    page-fault order — exploits temporal locality, but races when
 *    multiple CPUs fault concurrently.
 *
 * CdpcHintPolicy (vm/hints.h) layers the paper's madvise-style hint
 * table on top of either.
 */

#ifndef CDPC_VM_POLICY_H
#define CDPC_VM_POLICY_H

#include <cstdint>
#include <string>

#include "common/random.h"
#include "common/types.h"

namespace cdpc
{

/** Context the OS has available when a page fault occurs. */
struct FaultContext
{
    /** Faulting virtual page number. */
    PageNum vpn = 0;
    /** CPU that took the fault. */
    CpuId cpu = 0;
    /**
     * Number of CPUs with a fault outstanding at the same time.
     * Bin hopping's kernel race only matters when this exceeds 1.
     */
    std::uint32_t concurrentFaults = 1;
};

/** Interface: pick a preferred color for a faulting page. */
class PageMappingPolicy
{
  public:
    virtual ~PageMappingPolicy() = default;

    /** @return the preferred color for this fault, or kNoColor. */
    virtual Color preferredColor(const FaultContext &ctx) = 0;

    /** Policy name for reports ("page-coloring", "bin-hopping", ...). */
    virtual std::string name() const = 0;

    /** Reset mutable policy state between runs. */
    virtual void reset() {}
};

/**
 * Page coloring: color = virtual page number mod number of colors.
 * Conflicts then occur only between pages whose virtual addresses
 * differ by a multiple of the cache set span.
 */
class PageColoringPolicy : public PageMappingPolicy
{
  public:
    explicit PageColoringPolicy(std::uint64_t num_colors);

    Color preferredColor(const FaultContext &ctx) override;
    std::string name() const override { return "page-coloring"; }

  private:
    std::uint64_t colors;
};

/**
 * Bin hopping: a global cursor cycles through the colors in fault
 * order. With racy=true, concurrent faults from multiple CPUs perturb
 * the cursor nondeterministically, modeling the kernel race the paper
 * describes ("a race in the kernel to determine the color of each
 * page ... unpredictable performance", Section 2.1).
 */
class BinHoppingPolicy : public PageMappingPolicy
{
  public:
    /**
     * @param num_colors colors to cycle through
     * @param racy model the multiprocessor fault race
     * @param seed RNG seed for the racy perturbation
     */
    explicit BinHoppingPolicy(std::uint64_t num_colors, bool racy = false,
                              std::uint64_t seed = 1);

    Color preferredColor(const FaultContext &ctx) override;
    std::string name() const override { return "bin-hopping"; }
    void reset() override;

  private:
    std::uint64_t colors;
    bool racy;
    std::uint64_t seed;
    std::uint64_t cursor = 0;
    Rng rng;
};

/**
 * Random mapping: a seeded uniform color per fault. The classic
 * research baseline — no pathological alignment, no locality either.
 */
class RandomPolicy : public PageMappingPolicy
{
  public:
    explicit RandomPolicy(std::uint64_t num_colors,
                          std::uint64_t seed = 1);

    Color preferredColor(const FaultContext &ctx) override;
    std::string name() const override { return "random"; }
    void reset() override;

  private:
    std::uint64_t colors;
    std::uint64_t seed;
    Rng rng;
};

/**
 * Hashed coloring: XOR-fold the virtual page number so that pages a
 * cache-span apart stop aliasing — the "page hashing" variant some
 * systems adopted to break page coloring's power-of-two pathologies
 * deterministically.
 */
class HashPolicy : public PageMappingPolicy
{
  public:
    explicit HashPolicy(std::uint64_t num_colors);

    Color preferredColor(const FaultContext &ctx) override;
    std::string name() const override { return "hash"; }

  private:
    std::uint64_t colors;
};

} // namespace cdpc

#endif // CDPC_VM_POLICY_H
