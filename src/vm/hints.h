/**
 * @file
 * The madvise-style page-color hint interface (paper, Section 5.3).
 *
 * The CDPC run-time library computes a preferred color per virtual
 * page and hands the whole vector to the kernel "through a single
 * system call". The kernel stores them in a table consulted at
 * page-fault time; pages without a hint fall back to the system's
 * native policy (page coloring on IRIX, bin hopping on Digital UNIX).
 */

#ifndef CDPC_VM_HINTS_H
#define CDPC_VM_HINTS_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "vm/policy.h"

namespace cdpc
{

/** One page-color hint: virtual page -> preferred color. */
struct ColorHint
{
    PageNum vpn;
    Color color;

    bool operator==(const ColorHint &) const = default;
};

/**
 * A page mapping policy that consults a hint table first and falls
 * back to a native policy for unhinted pages. This is the kernel side
 * of CDPC: the extension the paper added to IRIX's madvise().
 */
class CdpcHintPolicy : public PageMappingPolicy
{
  public:
    /**
     * @param fallback the OS's native policy (not owned; must outlive
     *        this object)
     */
    explicit CdpcHintPolicy(PageMappingPolicy &fallback);

    /**
     * Install hints (the "single system call"). Later installs
     * overwrite earlier hints for the same page.
     */
    void madviseColors(const std::vector<ColorHint> &hints);

    /** Drop all hints. */
    void clearHints();

    Color preferredColor(const FaultContext &ctx) override;
    std::string name() const override;
    void reset() override;

    std::uint64_t numHints() const { return table.size(); }
    /** Faults that found a hint in the table. */
    std::uint64_t hintedFaults() const { return hinted; }
    /** Faults that fell back to the native policy. */
    std::uint64_t unhintedFaults() const { return unhinted; }

  private:
    PageMappingPolicy &fallback;
    std::unordered_map<PageNum, Color> table;
    std::uint64_t hinted = 0;
    std::uint64_t unhinted = 0;
};

} // namespace cdpc

#endif // CDPC_VM_HINTS_H
