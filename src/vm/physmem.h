/**
 * @file
 * Physical memory manager with per-color free lists.
 *
 * Pages of physical memory are grouped into colors: two pages have
 * the same color iff they map to the same bins of a physically
 * indexed cache (paper, Section 2.1). The manager keeps one free
 * list per color so the VM layer can honor preferred-color requests,
 * and falls back to neighbouring colors under memory pressure —
 * mirroring how the paper's kernels treat CDPC output strictly as a
 * hint ("it may not be able to honor the hints if the machine is
 * under memory pressure", Section 5).
 */

#ifndef CDPC_VM_PHYSMEM_H
#define CDPC_VM_PHYSMEM_H

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace cdpc
{

/** Allocation statistics for hint-honoring analysis. */
struct PhysMemStats
{
    std::uint64_t allocs = 0;
    /** Requests where the preferred color was available. */
    std::uint64_t preferredHonored = 0;
    /** Requests satisfied with a different color (pressure fallback). */
    std::uint64_t preferredDenied = 0;
    /** Requests that expressed no preference. */
    std::uint64_t noPreference = 0;
};

/**
 * Free-list based physical page allocator.
 *
 * Physical page number p has color p % numColors, matching real
 * memory where consecutive physical pages cycle through the cache.
 */
class PhysMem
{
  public:
    /**
     * @param num_pages total physical pages managed
     * @param num_colors page colors in the external cache
     */
    PhysMem(std::uint64_t num_pages, std::uint64_t num_colors);

    /**
     * Allocate one physical page.
     *
     * @param preferred the color to try first, or kNoColor
     * @return the allocated physical page number
     *
     * When the preferred color's list is empty, scans the remaining
     * colors round-robin from the preferred one. Calls fatal() when
     * physical memory is exhausted entirely.
     */
    PageNum alloc(Color preferred = kNoColor);

    /** Return a page to its color's free list. */
    void free(PageNum ppn);

    /** @return the color of physical page @p ppn. */
    Color colorOf(PageNum ppn) const;

    std::uint64_t freePages() const { return freeCount; }
    std::uint64_t totalPages() const { return numPages; }
    std::uint64_t numColors() const { return colors; }
    std::uint64_t freePagesOfColor(Color c) const;

    const PhysMemStats &stats() const { return stats_; }

  private:
    std::uint64_t numPages;
    std::uint64_t colors;
    std::uint64_t freeCount;
    /** freeLists[c] holds the free physical pages of color c. */
    std::vector<std::vector<PageNum>> freeLists;
    /** Round-robin cursor for no-preference allocations. */
    Color rotor = 0;
    PhysMemStats stats_;
};

} // namespace cdpc

#endif // CDPC_VM_PHYSMEM_H
