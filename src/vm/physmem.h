/**
 * @file
 * Physical memory manager with per-color free lists.
 *
 * Pages of physical memory are grouped into colors: two pages have
 * the same color iff they map to the same bins of a physically
 * indexed cache (paper, Section 2.1). The manager keeps one free
 * list per color so the VM layer can honor preferred-color requests,
 * and exposes exact-color/any-color allocation primitives the
 * ColorFallbackPolicy layer (vm/fallback.h) composes under memory
 * pressure — mirroring how the paper's kernels treat CDPC output
 * strictly as a hint ("it may not be able to honor the hints if the
 * machine is under memory pressure", Section 5).
 *
 * Pages pre-claimed by simulated competitor processes (vm/pressure.h)
 * can be marked *reclaimable*: they stay allocated, but when every
 * free list is empty the VM layer may reclaim them (the OS paging a
 * background process out) instead of dying, so experiments remain
 * runnable at arbitrarily high memory occupancy.
 */

#ifndef CDPC_VM_PHYSMEM_H
#define CDPC_VM_PHYSMEM_H

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.h"
#include "machine/index_function.h"

namespace cdpc
{

/** Allocation statistics for hint-honoring analysis. */
struct PhysMemStats
{
    std::uint64_t allocs = 0;
    /** Requests where the preferred color was available. */
    std::uint64_t preferredHonored = 0;
    /** Requests satisfied with a different color (pressure fallback). */
    std::uint64_t preferredDenied = 0;
    /** Requests that expressed no preference. */
    std::uint64_t noPreference = 0;
    /** Competitor pages handed back to the application. */
    std::uint64_t reclaimed = 0;
};

/**
 * Free-list based physical page allocator.
 *
 * A page's color comes from the machine's IndexFunction: `ppn %
 * numColors` on the paper's modulo machines (consecutive physical
 * pages cycle through the cache), a slice hash or channel interleave
 * on the hostile ones. colorOf() is the single accessor — no other
 * method may derive a color from a page number directly, or the
 * hashed mappings silently drift from the free-list seeding.
 */
class PhysMem
{
  public:
    /**
     * @param num_pages total physical pages managed
     * @param index the external cache's page→color mapping
     */
    PhysMem(std::uint64_t num_pages, const IndexFunction &index);

    /**
     * Legacy modulo convenience: page p has color p % num_colors.
     * @param num_pages total physical pages managed
     * @param num_colors page colors in the external cache
     */
    PhysMem(std::uint64_t num_pages, std::uint64_t num_colors)
        : PhysMem(num_pages, IndexFunction::moduloColors(num_colors))
    {}

    /**
     * Allocate one physical page.
     *
     * @param preferred the color to try first, or kNoColor
     * @return the allocated physical page number
     *
     * When the preferred color's list is empty, scans the remaining
     * colors round-robin from the preferred one. Calls fatal() when
     * physical memory is exhausted entirely.
     */
    PageNum alloc(Color preferred = kNoColor);

    /**
     * Allocate a page of exactly color @p c, or nullopt when that
     * color's free list is empty. Does not touch the preference
     * counters — degradation accounting lives in the VM layer.
     */
    std::optional<PageNum> tryAllocExact(Color c);

    /**
     * Allocate a page of whatever color the round-robin rotor lands
     * on (scanning forward from it), or nullopt when memory is
     * exhausted. The no-preference primitive.
     */
    std::optional<PageNum> tryAllocAny();

    /** Return a page to its color's free list; panics on double free. */
    void free(PageNum ppn);

    /**
     * Flag an *allocated* page as belonging to a reclaimable
     * competitor: reclaim() may later transfer it to a new owner.
     */
    void markReclaimable(PageNum ppn);

    /**
     * Transfer ownership of a reclaimable page, preferring color
     * @p preferred (any color when that one has none, or when
     * @p preferred is kNoColor). The page stays allocated; it simply
     * stops being reclaimable. @return nullopt when no reclaimable
     * pages remain.
     */
    std::optional<PageNum> reclaim(Color preferred);

    /**
     * @return the color of physical page @p ppn.
     * The single page→color accessor; every internal path (free-list
     * seeding, free, reclaim bookkeeping) routes through it.
     */
    Color
    colorOf(PageNum ppn) const
    {
        panicIfNot(ppn < numPages, "colorOf out-of-range page ", ppn);
        return idx.pageColorOf(ppn);
    }

    std::uint64_t freePages() const { return freeCount; }
    std::uint64_t totalPages() const { return numPages; }
    std::uint64_t numColors() const { return colors; }
    std::uint64_t freePagesOfColor(Color c) const;
    std::uint64_t reclaimablePages() const { return reclaimableCount; }

    const PhysMemStats &stats() const { return stats_; }

  private:
    PageNum takeFrom(Color c);

    std::uint64_t numPages;
    /** Page→color mapping (kind-aware). */
    IndexFunction idx;
    std::uint64_t colors;
    std::uint64_t freeCount;
    /** freeLists[c] holds the free physical pages of color c. */
    std::vector<std::vector<PageNum>> freeLists;
    /** reclaimable[c] holds competitor-owned pages of color c. */
    std::vector<std::vector<PageNum>> reclaimable;
    std::uint64_t reclaimableCount = 0;
    /** isFree[p] is 1 iff page p sits on a free list. */
    std::vector<std::uint8_t> isFree;
    /** Round-robin cursor for no-preference allocations. */
    Color rotor = 0;
    PhysMemStats stats_;
};

} // namespace cdpc

#endif // CDPC_VM_PHYSMEM_H
