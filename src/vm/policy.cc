#include "vm/policy.h"

#include "common/logging.h"

namespace cdpc
{

PageColoringPolicy::PageColoringPolicy(std::uint64_t num_colors)
    : colors(num_colors)
{
    fatalIf(colors == 0, "PageColoringPolicy needs at least one color");
}

Color
PageColoringPolicy::preferredColor(const FaultContext &ctx)
{
    return static_cast<Color>(ctx.vpn % colors);
}

BinHoppingPolicy::BinHoppingPolicy(std::uint64_t num_colors, bool racy,
                                   std::uint64_t seed)
    : colors(num_colors), racy(racy), seed(seed), rng(seed)
{
    fatalIf(colors == 0, "BinHoppingPolicy needs at least one color");
}

Color
BinHoppingPolicy::preferredColor(const FaultContext &ctx)
{
    std::uint64_t pick = cursor;
    if (racy && ctx.concurrentFaults > 1) {
        // Concurrent faulting CPUs race to increment the kernel's
        // cursor; model the unpredictable interleaving by letting the
        // effective slot land anywhere among the racers.
        pick += rng.below(ctx.concurrentFaults);
    }
    cursor++;
    return static_cast<Color>(pick % colors);
}

void
BinHoppingPolicy::reset()
{
    cursor = 0;
    rng = Rng(seed);
}

RandomPolicy::RandomPolicy(std::uint64_t num_colors, std::uint64_t seed)
    : colors(num_colors), seed(seed), rng(seed)
{
    fatalIf(colors == 0, "RandomPolicy needs at least one color");
}

Color
RandomPolicy::preferredColor(const FaultContext &ctx)
{
    (void)ctx;
    return static_cast<Color>(rng.below(colors));
}

void
RandomPolicy::reset()
{
    rng = Rng(seed);
}

HashPolicy::HashPolicy(std::uint64_t num_colors) : colors(num_colors)
{
    fatalIf(colors == 0, "HashPolicy needs at least one color");
}

Color
HashPolicy::preferredColor(const FaultContext &ctx)
{
    // Fold the bits above the color field back in so that pages one
    // cache span apart land on different colors.
    std::uint64_t v = ctx.vpn;
    std::uint64_t h = v;
    while (v >= colors) {
        v /= colors;
        h ^= v;
    }
    return static_cast<Color>(h % colors);
}

} // namespace cdpc
