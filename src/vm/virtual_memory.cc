#include "vm/virtual_memory.h"

#include "common/intmath.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cdpc
{

VirtualMemory::VirtualMemory(const MachineConfig &config, PhysMem &phys,
                             PageMappingPolicy &policy,
                             ColorFallbackPolicy *fallback)
    : phys(phys), policy_(policy), fallback_(fallback),
      pageSize(config.pageBytes),
      pageShift(floorLog2(config.pageBytes))
{
    fatalIf(!isPowerOf2(config.pageBytes),
            "page size must be a power of two");
    fatalIf(phys.numColors() != config.numColors(),
            "PhysMem colors (", phys.numColors(),
            ") disagree with machine config (", config.numColors(), ")");
}

PageNum
VirtualMemory::allocWithFallback(Color preferred)
{
    if (preferred == kNoColor) {
        stats_.noPreference++;
        if (auto p = phys.tryAllocAny())
            return *p;
        if (auto p = phys.reclaim(kNoColor)) {
            stats_.reclaimedPages++;
            return *p;
        }
        stats_.hintDenied++;
        fatal("physical memory exhausted");
    }

    if (auto p = phys.tryAllocExact(preferred)) {
        stats_.hintHonored++;
        return *p;
    }

    std::uint64_t reclaimed_before = phys.stats().reclaimed;
    std::optional<PageNum> p;
    if (fallback_) {
        p = fallback_->allocFallback(phys, this, preferred);
    } else {
        // Legacy semantics: scan forward from the preferred color,
        // then fall back to reclaiming a competitor page.
        std::uint64_t colors = phys.numColors();
        for (std::uint64_t i = 1; i < colors && !p; i++) {
            p = phys.tryAllocExact(
                static_cast<Color>((preferred + i) % colors));
        }
        if (!p)
            p = phys.reclaim(preferred);
    }
    if (!p) {
        stats_.hintDenied++;
        fatal("physical memory exhausted (fault preferred color ",
              preferred, ")");
    }
    bool reclaimed = phys.stats().reclaimed != reclaimed_before;
    if (reclaimed) {
        stats_.reclaimedPages++;
        CDPC_METRIC_COUNT("vm.reclaims", 1);
    }
    if (phys.colorOf(*p) == preferred) {
        stats_.hintHonored++;
        if (!reclaimed)
            stats_.hintStolen++;
    } else {
        stats_.hintFallback++;
        CDPC_METRIC_COUNT("vm.fallbacks", 1);
        if (obs::traceActive())
            obs::simInstant("fallback",
                            {{"preferred", preferred},
                             {"got", phys.colorOf(*p)}});
    }
    return *p;
}

Translation
VirtualMemory::translate(VAddr va, CpuId cpu,
                         std::uint32_t concurrent_faults)
{
    stats_.translations++;
    PageNum vpn = va >> pageShift;
    PageNum ppn = pageTable.lookup(vpn);
    if (ppn == PageTable::kUnmapped) {
        FaultContext ctx;
        ctx.vpn = vpn;
        ctx.cpu = cpu;
        ctx.concurrentFaults = concurrent_faults;
        Color preferred = policy_.preferredColor(ctx);
        ppn = allocWithFallback(preferred);
        pageTable.insert(vpn, ppn);
        stats_.pageFaults++;
        return {(ppn << pageShift) + (va & (pageSize - 1)), true};
    }
    return {(ppn << pageShift) + (va & (pageSize - 1)), false};
}

std::optional<PAddr>
VirtualMemory::translateIfMapped(VAddr va) const
{
    PageNum ppn = pageTable.lookup(va >> pageShift);
    if (ppn == PageTable::kUnmapped)
        return std::nullopt;
    return (ppn << pageShift) + (va & (pageSize - 1));
}

void
VirtualMemory::touch(VAddr va, CpuId cpu)
{
    translate(va, cpu, 1);
}

bool
VirtualMemory::isMapped(VAddr va) const
{
    return pageTable.mapped(va >> pageShift);
}

Color
VirtualMemory::colorOf(VAddr va) const
{
    PageNum ppn = pageTable.lookup(va >> pageShift);
    panicIfNot(ppn != PageTable::kUnmapped,
               "colorOf() on unmapped virtual address ", va);
    return phys.colorOf(ppn);
}

std::optional<Color>
VirtualMemory::remap(PageNum vpn, Color target)
{
    PageNum *slot = pageTable.slotOf(vpn);
    if (!slot)
        return std::nullopt;
    PageNum old_ppn = *slot;
    PageNum new_ppn = phys.alloc(target);
    *slot = new_ppn;
    generation_++;
    phys.free(old_ppn);
    return phys.colorOf(new_ppn);
}

std::optional<PageNum>
VirtualMemory::stealMappedPage(Color color)
{
    // Donor: a free page of any other color, scanning forward.
    std::optional<PageNum> donor;
    std::uint64_t colors = phys.numColors();
    for (std::uint64_t i = 1; i < colors && !donor; i++) {
        donor = phys.tryAllocExact(
            static_cast<Color>((color + i) % colors));
    }
    if (!donor)
        return std::nullopt;

    // Victim: the lowest-vpn mapping occupying the wanted color
    // (forEach visits mappings in ascending vpn order).
    PageNum victim_vpn = PageTable::kUnmapped;
    pageTable.forEach([&](PageNum vpn, PageNum ppn) {
        if (victim_vpn == PageTable::kUnmapped &&
            phys.colorOf(ppn) == color) {
            victim_vpn = vpn;
        }
    });
    if (victim_vpn == PageTable::kUnmapped) {
        phys.free(*donor);
        return std::nullopt;
    }

    PageNum *slot = pageTable.slotOf(victim_vpn);
    PageNum freed = *slot;
    // Purge/shootdown must run while the victim still maps its old
    // physical page: the observer (MemorySystem::purgePage) translates
    // the vpn to find the lines to invalidate. Firing it after the
    // rewrite would purge the *donor* page and leave stale — possibly
    // dirty — lines of the freed page alive in the caches while the
    // page is handed to a different vpn. purgePage never mutates the
    // page table, so the slot pointer stays valid across the call.
    if (remapObserver_)
        remapObserver_(victim_vpn);
    *slot = *donor;
    generation_++;
    CDPC_METRIC_COUNT("vm.steals", 1);
    if (obs::traceActive())
        obs::simInstant("colorSteal", {{"color", color},
                                       {"victimVpn", victim_vpn}});
    return freed;
}

std::vector<std::uint32_t>
VirtualMemory::mappedPagesPerColor() const
{
    std::vector<std::uint32_t> counts(phys.numColors(), 0);
    pageTable.forEach([&](PageNum, PageNum ppn) {
        counts[phys.colorOf(ppn)]++;
    });
    return counts;
}

void
VirtualMemory::setRemapObserver(std::function<void(PageNum)> obs)
{
    remapObserver_ = std::move(obs);
}

void
VirtualMemory::unmapAll()
{
    pageTable.forEach([&](PageNum, PageNum ppn) { phys.free(ppn); });
    pageTable.clear();
    generation_++;
}

} // namespace cdpc
