#include "vm/virtual_memory.h"

#include "common/logging.h"

namespace cdpc
{

VirtualMemory::VirtualMemory(const MachineConfig &config, PhysMem &phys,
                             PageMappingPolicy &policy,
                             ColorFallbackPolicy *fallback)
    : phys(phys), policy_(policy), fallback_(fallback),
      pageSize(config.pageBytes)
{
    fatalIf(phys.numColors() != config.numColors(),
            "PhysMem colors (", phys.numColors(),
            ") disagree with machine config (", config.numColors(), ")");
}

PageNum
VirtualMemory::allocWithFallback(Color preferred)
{
    if (preferred == kNoColor) {
        stats_.noPreference++;
        if (auto p = phys.tryAllocAny())
            return *p;
        if (auto p = phys.reclaim(kNoColor)) {
            stats_.reclaimedPages++;
            return *p;
        }
        stats_.hintDenied++;
        fatal("physical memory exhausted");
    }

    if (auto p = phys.tryAllocExact(preferred)) {
        stats_.hintHonored++;
        return *p;
    }

    std::uint64_t reclaimed_before = phys.stats().reclaimed;
    std::optional<PageNum> p;
    if (fallback_) {
        p = fallback_->allocFallback(phys, this, preferred);
    } else {
        // Legacy semantics: scan forward from the preferred color,
        // then fall back to reclaiming a competitor page.
        std::uint64_t colors = phys.numColors();
        for (std::uint64_t i = 1; i < colors && !p; i++) {
            p = phys.tryAllocExact(
                static_cast<Color>((preferred + i) % colors));
        }
        if (!p)
            p = phys.reclaim(preferred);
    }
    if (!p) {
        stats_.hintDenied++;
        fatal("physical memory exhausted (fault preferred color ",
              preferred, ")");
    }
    bool reclaimed = phys.stats().reclaimed != reclaimed_before;
    if (reclaimed)
        stats_.reclaimedPages++;
    if (phys.colorOf(*p) == preferred) {
        stats_.hintHonored++;
        if (!reclaimed)
            stats_.hintStolen++;
    } else {
        stats_.hintFallback++;
    }
    return *p;
}

Translation
VirtualMemory::translate(VAddr va, CpuId cpu,
                         std::uint32_t concurrent_faults)
{
    stats_.translations++;
    PageNum vpn = va / pageSize;
    auto it = pageTable.find(vpn);
    if (it == pageTable.end()) {
        FaultContext ctx;
        ctx.vpn = vpn;
        ctx.cpu = cpu;
        ctx.concurrentFaults = concurrent_faults;
        Color preferred = policy_.preferredColor(ctx);
        PageNum ppn = allocWithFallback(preferred);
        it = pageTable.emplace(vpn, ppn).first;
        stats_.pageFaults++;
        return {it->second * pageSize + va % pageSize, true};
    }
    return {it->second * pageSize + va % pageSize, false};
}

std::optional<PAddr>
VirtualMemory::translateIfMapped(VAddr va) const
{
    PageNum vpn = va / pageSize;
    auto it = pageTable.find(vpn);
    if (it == pageTable.end())
        return std::nullopt;
    return it->second * pageSize + va % pageSize;
}

void
VirtualMemory::touch(VAddr va, CpuId cpu)
{
    translate(va, cpu, 1);
}

bool
VirtualMemory::isMapped(VAddr va) const
{
    return pageTable.contains(va / pageSize);
}

Color
VirtualMemory::colorOf(VAddr va) const
{
    auto it = pageTable.find(va / pageSize);
    panicIfNot(it != pageTable.end(),
               "colorOf() on unmapped virtual address ", va);
    return phys.colorOf(it->second);
}

std::optional<Color>
VirtualMemory::remap(PageNum vpn, Color target)
{
    auto it = pageTable.find(vpn);
    if (it == pageTable.end())
        return std::nullopt;
    PageNum old_ppn = it->second;
    PageNum new_ppn = phys.alloc(target);
    it->second = new_ppn;
    phys.free(old_ppn);
    return phys.colorOf(new_ppn);
}

std::optional<PageNum>
VirtualMemory::stealMappedPage(Color color)
{
    // Donor: a free page of any other color, scanning forward.
    std::optional<PageNum> donor;
    std::uint64_t colors = phys.numColors();
    for (std::uint64_t i = 1; i < colors && !donor; i++) {
        donor = phys.tryAllocExact(
            static_cast<Color>((color + i) % colors));
    }
    if (!donor)
        return std::nullopt;

    // Victim: the lowest-vpn mapping occupying the wanted color
    // (lowest, not first-found, to stay hash-order independent).
    auto victim = pageTable.end();
    for (auto it = pageTable.begin(); it != pageTable.end(); ++it) {
        if (phys.colorOf(it->second) != color)
            continue;
        if (victim == pageTable.end() || it->first < victim->first)
            victim = it;
    }
    if (victim == pageTable.end()) {
        phys.free(*donor);
        return std::nullopt;
    }

    PageNum freed = victim->second;
    victim->second = *donor;
    if (remapObserver_)
        remapObserver_(victim->first);
    return freed;
}

void
VirtualMemory::setRemapObserver(std::function<void(PageNum)> obs)
{
    remapObserver_ = std::move(obs);
}

void
VirtualMemory::unmapAll()
{
    for (const auto &[vpn, ppn] : pageTable)
        phys.free(ppn);
    pageTable.clear();
}

} // namespace cdpc
