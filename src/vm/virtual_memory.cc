#include "vm/virtual_memory.h"

#include "common/logging.h"

namespace cdpc
{

VirtualMemory::VirtualMemory(const MachineConfig &config, PhysMem &phys,
                             PageMappingPolicy &policy)
    : phys(phys), policy_(policy), pageSize(config.pageBytes)
{
    fatalIf(phys.numColors() != config.numColors(),
            "PhysMem colors (", phys.numColors(),
            ") disagree with machine config (", config.numColors(), ")");
}

Translation
VirtualMemory::translate(VAddr va, CpuId cpu,
                         std::uint32_t concurrent_faults)
{
    stats_.translations++;
    PageNum vpn = va / pageSize;
    auto it = pageTable.find(vpn);
    if (it == pageTable.end()) {
        FaultContext ctx;
        ctx.vpn = vpn;
        ctx.cpu = cpu;
        ctx.concurrentFaults = concurrent_faults;
        Color preferred = policy_.preferredColor(ctx);
        PageNum ppn = phys.alloc(preferred);
        it = pageTable.emplace(vpn, ppn).first;
        stats_.pageFaults++;
        return {it->second * pageSize + va % pageSize, true};
    }
    return {it->second * pageSize + va % pageSize, false};
}

std::optional<PAddr>
VirtualMemory::translateIfMapped(VAddr va) const
{
    PageNum vpn = va / pageSize;
    auto it = pageTable.find(vpn);
    if (it == pageTable.end())
        return std::nullopt;
    return it->second * pageSize + va % pageSize;
}

void
VirtualMemory::touch(VAddr va, CpuId cpu)
{
    translate(va, cpu, 1);
}

bool
VirtualMemory::isMapped(VAddr va) const
{
    return pageTable.contains(va / pageSize);
}

Color
VirtualMemory::colorOf(VAddr va) const
{
    auto it = pageTable.find(va / pageSize);
    panicIfNot(it != pageTable.end(),
               "colorOf() on unmapped virtual address ", va);
    return phys.colorOf(it->second);
}

std::optional<Color>
VirtualMemory::remap(PageNum vpn, Color target)
{
    auto it = pageTable.find(vpn);
    if (it == pageTable.end())
        return std::nullopt;
    PageNum old_ppn = it->second;
    PageNum new_ppn = phys.alloc(target);
    it->second = new_ppn;
    phys.free(old_ppn);
    return phys.colorOf(new_ppn);
}

void
VirtualMemory::unmapAll()
{
    for (const auto &[vpn, ppn] : pageTable)
        phys.free(ppn);
    pageTable.clear();
}

} // namespace cdpc
