#include "vm/fallback.h"

#include "common/logging.h"
#include "vm/virtual_memory.h"

namespace cdpc
{

namespace
{

/** Last resort shared by every policy: take a competitor's page. */
std::optional<PageNum>
reclaimOrNothing(PhysMem &phys, Color preferred)
{
    return phys.reclaim(preferred);
}

/** Scan forward from preferred+1 (the legacy alloc() order). */
std::optional<PageNum>
scanForward(PhysMem &phys, Color preferred)
{
    std::uint64_t colors = phys.numColors();
    for (std::uint64_t i = 1; i < colors; i++) {
        Color c = static_cast<Color>((preferred + i) % colors);
        if (auto p = phys.tryAllocExact(c))
            return p;
    }
    return std::nullopt;
}

class AnyColorPolicy : public ColorFallbackPolicy
{
  public:
    std::optional<PageNum>
    allocFallback(PhysMem &phys, VirtualMemory *, Color preferred)
        override
    {
        if (auto p = scanForward(phys, preferred))
            return p;
        return reclaimOrNothing(phys, preferred);
    }

    const char *name() const override { return "any"; }
};

class NearestColorPolicy : public ColorFallbackPolicy
{
  public:
    std::optional<PageNum>
    allocFallback(PhysMem &phys, VirtualMemory *, Color preferred)
        override
    {
        std::uint64_t colors = phys.numColors();
        for (std::uint64_t d = 1; d <= colors / 2; d++) {
            Color up = static_cast<Color>((preferred + d) % colors);
            if (auto p = phys.tryAllocExact(up))
                return p;
            Color down = static_cast<Color>(
                (preferred + colors - d) % colors);
            if (down != up) {
                if (auto p = phys.tryAllocExact(down))
                    return p;
            }
        }
        return reclaimOrNothing(phys, preferred);
    }

    const char *name() const override { return "nearest"; }
};

class StealPolicy : public ColorFallbackPolicy
{
  public:
    std::optional<PageNum>
    allocFallback(PhysMem &phys, VirtualMemory *vm, Color preferred)
        override
    {
        if (vm) {
            if (auto p = vm->stealMappedPage(preferred))
                return p;
        }
        // Nothing to steal (or no donor page): degrade like any-color.
        if (auto p = scanForward(phys, preferred))
            return p;
        return reclaimOrNothing(phys, preferred);
    }

    const char *name() const override { return "steal"; }

    bool mayStealMappedPages() const override { return true; }
};

} // namespace

const char *
fallbackName(FallbackKind kind)
{
    switch (kind) {
      case FallbackKind::AnyColor:
        return "any";
      case FallbackKind::NearestColor:
        return "nearest";
      case FallbackKind::Steal:
        return "steal";
    }
    return "unknown";
}

FallbackKind
parseFallback(const std::string &name)
{
    if (name == "any" || name == "any-color")
        return FallbackKind::AnyColor;
    if (name == "nearest" || name == "nearest-color")
        return FallbackKind::NearestColor;
    if (name == "steal")
        return FallbackKind::Steal;
    fatal("unknown fallback policy '", name,
          "' (want any|nearest|steal)");
}

std::unique_ptr<ColorFallbackPolicy>
makeFallbackPolicy(FallbackKind kind)
{
    switch (kind) {
      case FallbackKind::AnyColor:
        return std::make_unique<AnyColorPolicy>();
      case FallbackKind::NearestColor:
        return std::make_unique<NearestColorPolicy>();
      case FallbackKind::Steal:
        return std::make_unique<StealPolicy>();
    }
    panic("unreachable fallback kind");
}

} // namespace cdpc
