#include "vm/page_table.h"

#include <algorithm>

#include "common/logging.h"

namespace cdpc
{

std::size_t
PageTable::upperBound(PageNum vpn) const
{
    auto it = std::upper_bound(
        segs.begin(), segs.end(), vpn,
        [](PageNum v, const Segment &s) { return v < s.base; });
    return static_cast<std::size_t>(it - segs.begin());
}

PageNum
PageTable::lookupSlow(PageNum vpn) const
{
    std::size_t ub = upperBound(vpn);
    if (ub == 0)
        return kUnmapped;
    const Segment &s = segs[ub - 1];
    if (vpn - s.base >= s.ppns.size())
        return kUnmapped;
    lastSeg = ub - 1;
    return s.ppns[vpn - s.base];
}

PageNum *
PageTable::slotOf(PageNum vpn)
{
    std::size_t ub = upperBound(vpn);
    if (ub == 0)
        return nullptr;
    Segment &s = segs[ub - 1];
    if (vpn - s.base >= s.ppns.size() || s.ppns[vpn - s.base] == kUnmapped)
        return nullptr;
    return &s.ppns[vpn - s.base];
}

void
PageTable::mergeForward(std::size_t i)
{
    while (i + 1 < segs.size()) {
        Segment &a = segs[i];
        const Segment &b = segs[i + 1];
        PageNum a_end = a.base + a.ppns.size();
        if (a_end < b.base)
            break;
        panicIfNot(a_end == b.base,
                   "page table segments overlap at vpn ", b.base);
        a.ppns.insert(a.ppns.end(), b.ppns.begin(), b.ppns.end());
        segs.erase(segs.begin() + static_cast<std::ptrdiff_t>(i) + 1);
    }
    lastSeg = i;
}

void
PageTable::insert(PageNum vpn, PageNum ppn)
{
    panicIfNot(ppn != kUnmapped, "mapping to the unmapped sentinel");
    std::size_t ub = upperBound(vpn);

    // Inside or shortly after the preceding segment?
    if (ub > 0) {
        Segment &p = segs[ub - 1];
        PageNum off = vpn - p.base;
        if (off < p.ppns.size()) {
            panicIfNot(p.ppns[off] == kUnmapped,
                       "double-mapping vpn ", vpn);
            p.ppns[off] = ppn;
            mapped_++;
            lastSeg = ub - 1;
            return;
        }
        if (off - p.ppns.size() < kMaxGap) {
            p.ppns.resize(off + 1, kUnmapped);
            p.ppns[off] = ppn;
            mapped_++;
            mergeForward(ub - 1);
            return;
        }
    }

    // Shortly before the following segment? Grow it backward, with
    // extra front slack so descending fault order stays linear.
    if (ub < segs.size() && segs[ub].base - vpn <= kMaxGap) {
        Segment &n = segs[ub];
        PageNum room = n.base; // distance to vpn 0
        if (ub > 0)
            room = n.base - (segs[ub - 1].base + segs[ub - 1].ppns.size());
        PageNum need = n.base - vpn;
        PageNum slack = std::min<PageNum>(
            room, need + std::min<PageNum>(n.ppns.size(), 4096));
        n.ppns.insert(n.ppns.begin(), slack, kUnmapped);
        n.base -= slack;
        n.ppns[vpn - n.base] = ppn;
        mapped_++;
        if (ub > 0)
            mergeForward(ub - 1);
        else
            lastSeg = ub;
        return;
    }

    // A genuinely new range.
    Segment s;
    s.base = vpn;
    s.ppns.push_back(ppn);
    segs.insert(segs.begin() + static_cast<std::ptrdiff_t>(ub),
                std::move(s));
    mapped_++;
    lastSeg = ub;
}

void
PageTable::clear()
{
    segs.clear();
    mapped_ = 0;
    lastSeg = 0;
}

void
PageTable::audit() const
{
    std::uint64_t live = 0;
    for (std::size_t i = 0; i < segs.size(); i++) {
        const Segment &s = segs[i];
        panicIfNot(!s.ppns.empty(),
                   "page table audit: empty segment at index ", i);
        if (i > 0) {
            const Segment &prev = segs[i - 1];
            PageNum prev_end = prev.base + prev.ppns.size();
            panicIfNot(prev_end < s.base,
                       "page table audit: segments not strictly "
                       "disjoint/sorted at vpn ", s.base);
        }
        for (PageNum ppn : s.ppns) {
            if (ppn != kUnmapped)
                live++;
        }
    }
    panicIfNot(live == mapped_, "page table audit: mapped count ",
               mapped_, " but ", live, " live entries");
}

} // namespace cdpc
